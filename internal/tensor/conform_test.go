package tensor

import (
	"fmt"
	"math"
	"testing"
)

// Backend conformance: one shared table of kernel cases runs against every
// registered backend, so a new backend cannot pass the suite without
// matching the float64 reference semantics — transpose variants, bias
// fusion, shape validation, and the edge shapes that exercise unroll tails
// (k not a multiple of 4, odd row counts that break the 2-row pairing,
// single-row and single-column operands).

// naiveRef computes the requested product in float64 with a plain triple
// loop, reading operands through the dtype-agnostic At accessor. It is the
// ground truth every backend is compared against.
func naiveRef(op string, a, b, bias *Mat) *Mat {
	var m, k, n int
	switch op {
	case "matmul", "matmulBias":
		m, k, n = a.R, a.C, b.C
	case "matmulAT":
		m, k, n = a.C, a.R, b.C
	case "matmulBT":
		m, k, n = a.R, a.C, b.R
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for kk := 0; kk < k; kk++ {
				switch op {
				case "matmul", "matmulBias":
					s += a.At(i, kk) * b.At(kk, j)
				case "matmulAT":
					s += a.At(kk, i) * b.At(kk, j)
				case "matmulBT":
					s += a.At(i, kk) * b.At(j, kk)
				}
			}
			if bias != nil {
				s += bias.At(0, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// conformShapes covers the unroll edges: R or C = 1, k below / straddling /
// far beyond the 4-wide unroll, odd rows (2-row pairing tail), odd columns
// (2×2 BT tile edge), and a k-depth crossing the mmKBlock cache panel.
func conformShapes() []struct{ m, k, n int } {
	return []struct{ m, k, n int }{
		{1, 1, 1},
		{1, 7, 5},
		{5, 1, 3},
		{3, 4, 1},
		{2, 8, 6},
		{7, 9, 11}, // odd everything: pairing + tile edges + k tail
		{4, 5, 8},
		{8, mmKBlock + 3, 4}, // k panel boundary plus remainder
		{16, 32, 16},
	}
}

// tolFor scales the comparison tolerance to the backend's precision: the
// float64 backend must reproduce the naive reference near-exactly (it sums
// in a different order, so allow bottom-bit noise), float32 rounds each of
// ~k accumulation steps to 24 bits.
func tolFor(dt DType, k int) float64 {
	if dt == F32 {
		return 1e-5 * float64(k+1)
	}
	return 1e-12 * float64(k+1)
}

func TestBackendConformance(t *testing.T) {
	ops := []string{"matmul", "matmulBias", "matmulAT", "matmulBT"}
	for _, bk := range Backends() {
		dt := bk.DType()
		for _, op := range ops {
			for _, s := range conformShapes() {
				t.Run(fmt.Sprintf("%s/%s/%dx%dx%d", bk.Name(), op, s.m, s.k, s.n), func(t *testing.T) {
					rng := NewRNG(42)
					var a, b, bias *Mat
					switch op {
					case "matmulAT":
						a = randFilled(dt, s.k, s.m, rng)
						b = randFilled(dt, s.k, s.n, rng)
					case "matmulBT":
						a = randFilled(dt, s.m, s.k, rng)
						b = randFilled(dt, s.n, s.k, rng)
					default:
						a = randFilled(dt, s.m, s.k, rng)
						b = randFilled(dt, s.k, s.n, rng)
					}
					if op == "matmulBias" {
						bias = randFilled(dt, 1, s.n, rng)
					}
					dst := NewOf(dt, s.m, s.n)
					runKernel(op, dst, a, b, bias)
					want := naiveRef(op, a, b, bias)
					tol := tolFor(dt, s.k)
					for i := 0; i < s.m; i++ {
						for j := 0; j < s.n; j++ {
							got, ref := dst.At(i, j), want.At(i, j)
							if math.Abs(got-ref) > tol*math.Max(1, math.Abs(ref)) {
								t.Fatalf("(%d,%d): got %v, want %v (tol %v)", i, j, got, ref, tol)
							}
						}
					}
				})
			}
		}
	}
}

func randFilled(dt DType, r, c int, rng *RNG) *Mat {
	m := NewOf(dt, r, c)
	rng.FillNormal(m, 1)
	// Sprinkle zeros so the zero-skip fast paths execute under the
	// conformance comparison too.
	for i := 0; i < m.Len(); i += 7 {
		m.Set(i/c, i%c, 0)
	}
	return m
}

func runKernel(op string, dst, a, b, bias *Mat) {
	switch op {
	case "matmul":
		MatMulInto(dst, a, b)
	case "matmulBias":
		MatMulBiasInto(dst, a, b, bias)
	case "matmulAT":
		MatMulATInto(dst, a, b)
	case "matmulBT":
		MatMulBTInto(dst, a, b)
	}
}

// TestBackendDeterminismAcrossWorkers pins the determinism contract: within
// one backend, kernel output bits must not depend on the parallelism level.
func TestBackendDeterminismAcrossWorkers(t *testing.T) {
	defer SetParallelism(0)
	for _, bk := range Backends() {
		dt := bk.DType()
		rng := NewRNG(7)
		a := randFilled(dt, 33, 70, rng) // odd rows, k tail, > chunk sizes
		b := randFilled(dt, 70, 37, rng)
		bias := randFilled(dt, 1, 37, rng)
		at := randFilled(dt, 70, 33, rng)
		bt := randFilled(dt, 37, 70, rng)

		type run struct{ mm, bias, at, bt *Mat }
		do := func() run {
			r := run{
				mm:   NewOf(dt, 33, 37),
				bias: NewOf(dt, 33, 37),
				at:   NewOf(dt, 33, 37),
				bt:   NewOf(dt, 33, 37),
			}
			MatMulInto(r.mm, a, b)
			MatMulBiasInto(r.bias, a, b, bias)
			MatMulATInto(r.at, at, b)
			MatMulBTInto(r.bt, a, bt)
			return r
		}
		SetParallelism(1)
		ref := do()
		for _, workers := range []int{4, 8} {
			SetParallelism(workers)
			got := do()
			for name, pair := range map[string][2]*Mat{
				"matmul":     {ref.mm, got.mm},
				"matmulBias": {ref.bias, got.bias},
				"matmulAT":   {ref.at, got.at},
				"matmulBT":   {ref.bt, got.bt},
			} {
				if !bitsEqual(pair[0], pair[1]) {
					t.Errorf("%s/%s: workers=%d differs from workers=1", bk.Name(), name, workers)
				}
			}
		}
	}
}

func bitsEqual(a, b *Mat) bool {
	if a.R != b.R || a.C != b.C || a.DType() != b.DType() {
		return false
	}
	for i, v := range a.V {
		if math.Float64bits(v) != math.Float64bits(b.V[i]) {
			return false
		}
	}
	for i, v := range a.V32 {
		if math.Float32bits(v) != math.Float32bits(b.V32[i]) {
			return false
		}
	}
	return true
}

// TestVectorizedScalarBitIdentity pins the strongest float32 invariant:
// the AVX2 paths and the pure-Go scalar fallback accumulate in the same
// order with the same per-op rounding (no FMA), so toggling vectorization
// must not change one output bit.
func TestVectorizedScalarBitIdentity(t *testing.T) {
	wasOn := Vectorized()
	if !setVectorized(true) {
		t.Skip("SIMD unsupported on this platform")
	}
	defer setVectorized(wasOn)
	rng := NewRNG(11)
	a := randFilled(F32, 21, 75, rng)
	b := randFilled(F32, 75, 19, rng)
	bias := randFilled(F32, 1, 19, rng)
	at := randFilled(F32, 75, 21, rng)

	do := func() [3]*Mat {
		mm := NewOf(F32, 21, 19)
		mb := NewOf(F32, 21, 19)
		atd := NewOf(F32, 21, 19)
		MatMulInto(mm, a, b)
		MatMulBiasInto(mb, a, b, bias)
		MatMulATInto(atd, at, b)
		return [3]*Mat{mm, mb, atd}
	}
	vec := do()
	setVectorized(false)
	scalar := do()
	for i, name := range []string{"matmul", "matmulBias", "matmulAT"} {
		if !bitsEqual(vec[i], scalar[i]) {
			t.Errorf("%s: vectorized and scalar paths disagree bitwise", name)
		}
	}
}

// TestKernelShapeErrors verifies shape validation fires identically for
// every backend — the checks live above the seam, so a mismatched operand
// panics before any kernel runs.
func TestKernelShapeErrors(t *testing.T) {
	for _, bk := range Backends() {
		dt := bk.DType()
		cases := []struct {
			name string
			fn   func()
		}{
			{"matmul-inner", func() { MatMulInto(NewOf(dt, 2, 2), NewOf(dt, 2, 3), NewOf(dt, 2, 2)) }},
			{"matmul-dst", func() { MatMulInto(NewOf(dt, 3, 2), NewOf(dt, 2, 3), NewOf(dt, 3, 2)) }},
			{"bias-len", func() {
				MatMulBiasInto(NewOf(dt, 2, 2), NewOf(dt, 2, 3), NewOf(dt, 3, 2), NewOf(dt, 1, 3))
			}},
			{"at", func() { MatMulATInto(NewOf(dt, 2, 2), NewOf(dt, 3, 2), NewOf(dt, 2, 2)) }},
			{"bt", func() { MatMulBTInto(NewOf(dt, 2, 2), NewOf(dt, 2, 3), NewOf(dt, 2, 2)) }},
		}
		for _, tc := range cases {
			t.Run(bk.Name()+"/"+tc.name, func(t *testing.T) {
				defer func() {
					if recover() == nil {
						t.Fatal("expected shape panic")
					}
				}()
				tc.fn()
			})
		}
	}
}

// TestKernelDTypeMismatch verifies mixing dtypes across operands panics
// instead of silently reading a nil storage slice.
func TestKernelDTypeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected dtype mismatch panic")
		}
	}()
	MatMulInto(New(2, 2), NewOf(F32, 2, 3), NewOf(F32, 3, 2))
}
