package tensor

// Float32 matmul kernels. They keep the float64 kernels' cache blocking
// (mmKBlock k-panels) and zero-skip, but run their row updates through
// width-unrolled primitives that dispatch to AVX2 on capable hardware
// (simd_amd64.s): each pass applies four a-coefficients to a dst row, so
// eight multiply-adds retire per 8-lane step against five vector loads and
// one store. Combined with halved element width this is where the ≥1.5×
// win over the scalar float64 kernels comes from.
//
// Determinism: every dst element is accumulated in k-ascending groups of
// four with one rounding per add, using the same expression shape in the
// vector path, the scalar tail, and the pure-Go fallback — no FMA anywhere
// — so results are bit-identical across worker counts, and across the
// vectorized and scalar code paths.

// mmInitRows32 seeds dst rows [i0,i1) with bias (or zero).
func mmInitRows32(dst *Mat, i0, i1 int, bias []float32) {
	n := dst.C
	for i := i0; i < i1; i++ {
		drow := dst.V32[i*n : i*n+n]
		if bias == nil {
			for j := range drow {
				drow[j] = 0
			}
		} else {
			copy(drow, bias)
		}
	}
}

// mmRowGroup32 applies one k-group of four a-coefficients to a dst row:
// drow[j] = (((drow[j] + a0*b0[j]) + a1*b1[j]) + a2*b2[j]) + a3*b3[j].
func mmRowGroup32(drow []float32, a0, a1, a2, a3 float32, b0, b1, b2, b3 []float32) {
	if vecEnabled {
		axpy4x32(drow, b0, b1, b2, b3, a0, a1, a2, a3)
		return
	}
	_ = b0[len(drow)-1]
	_ = b1[len(drow)-1]
	_ = b2[len(drow)-1]
	_ = b3[len(drow)-1]
	for j, d := range drow {
		drow[j] = d + a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

// mmRowSingle32 applies a single a-coefficient: drow[j] += av*brow[j].
func mmRowSingle32(drow []float32, av float32, brow []float32) {
	if vecEnabled {
		axpy1x32(drow, brow, av)
		return
	}
	for j, bv := range brow {
		drow[j] += av * bv
	}
}

// mmRowTail32 applies the k-remainder (fewer than four coefficients) of a
// block to a single dst row, one k at a time in ascending order.
func mmRowTail32(drow, arow []float32, b *Mat, k, k1 int) {
	n := b.C
	for ; k < k1; k++ {
		av := arow[k]
		if av == 0 {
			continue
		}
		mmRowSingle32(drow, av, b.V32[k*n:k*n+n])
	}
}

// matmulBias32 computes dst = a×b (+ bias) over float32 storage.
func matmulBias32(dst, a, b *Mat, bias []float32) {
	work := 2 * a.R * a.C * b.C
	if runsInline(a.R, work) {
		matmulBias32Range(dst, a, b, bias, 0, a.R)
		return
	}
	Parallel(a.R, work, func(i0, i1 int) {
		matmulBias32Range(dst, a, b, bias, i0, i1)
	})
}

// matmulBias32Range applies the kernel to dst rows [i0, i1).
func matmulBias32Range(dst, a, b *Mat, bias []float32, i0, i1 int) {
	kk, n := a.C, b.C
	mmInitRows32(dst, i0, i1, bias)
	for k0 := 0; k0 < kk; k0 += mmKBlock {
		k1 := k0 + mmKBlock
		if k1 > kk {
			k1 = kk
		}
		kEnd := k0 + (k1-k0)&^3 // last full group of four in this block
		for i := i0; i < i1; i++ {
			arow := a.V32[i*kk : i*kk+kk]
			drow := dst.V32[i*n : i*n+n]
			for k := k0; k < kEnd; k += 4 {
				a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					// ReLU activations feed these kernels: whole-zero
					// groups are common enough to be worth skipping.
					continue
				}
				mmRowGroup32(drow,
					a0, a1, a2, a3,
					b.V32[k*n:k*n+n], b.V32[(k+1)*n:(k+1)*n+n],
					b.V32[(k+2)*n:(k+2)*n+n], b.V32[(k+3)*n:(k+3)*n+n])
			}
			mmRowTail32(drow, arow, b, kEnd, k1)
		}
	}
}

// matmulAT32 computes dst = aᵀ×b over float32 storage. Structure mirrors
// the float64 matmulAT: the a-coefficients are strided column loads, the
// dst-row accumulation order is identical to matmulBias32's.
func matmulAT32(dst, a, b *Mat) {
	m := a.C
	work := 2 * m * a.R * b.C
	if runsInline(m, work) {
		matmulAT32Range(dst, a, b, 0, m)
		return
	}
	Parallel(m, work, func(i0, i1 int) {
		matmulAT32Range(dst, a, b, i0, i1)
	})
}

// matmulAT32Range applies the aᵀ×b kernel to dst rows [i0, i1).
func matmulAT32Range(dst, a, b *Mat, i0, i1 int) {
	kk, m, n := a.R, a.C, b.C
	for i := i0; i < i1; i++ {
		drow := dst.V32[i*n : i*n+n]
		for j := range drow {
			drow[j] = 0
		}
	}
	for k0 := 0; k0 < kk; k0 += mmKBlock {
		k1 := k0 + mmKBlock
		if k1 > kk {
			k1 = kk
		}
		kEnd := k0 + (k1-k0)&^3
		for i := i0; i < i1; i++ {
			drow := dst.V32[i*n : i*n+n]
			for k := k0; k < kEnd; k += 4 {
				a0 := a.V32[k*m+i]
				a1 := a.V32[(k+1)*m+i]
				a2 := a.V32[(k+2)*m+i]
				a3 := a.V32[(k+3)*m+i]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				mmRowGroup32(drow,
					a0, a1, a2, a3,
					b.V32[k*n:k*n+n], b.V32[(k+1)*n:(k+1)*n+n],
					b.V32[(k+2)*n:(k+2)*n+n], b.V32[(k+3)*n:(k+3)*n+n])
			}
			for k := kEnd; k < k1; k++ {
				av := a.V32[k*m+i]
				if av == 0 {
					continue
				}
				mmRowSingle32(drow, av, b.V32[k*n:k*n+n])
			}
		}
	}
}

// matmulBT32 computes dst = a×bᵀ over float32 storage with the same 2×2
// register tile as the float64 kernel: two a rows against two b rows share
// every operand load across four independent accumulation chains. The dot
// shapes this kernel serves (gradient reductions over long k) have no
// row-major b panel to stream, so it stays scalar.
func matmulBT32(dst, a, b *Mat) {
	work := 2 * a.R * a.C * b.R
	if runsInline(a.R, work) {
		matmulBT32Range(dst, a, b, 0, a.R)
		return
	}
	Parallel(a.R, work, func(i0, i1 int) {
		matmulBT32Range(dst, a, b, i0, i1)
	})
}

// matmulBT32Range applies the a×bᵀ kernel to dst rows [i0, i1).
func matmulBT32Range(dst, a, b *Mat, i0, i1 int) {
	kk, n := a.C, b.R
	i := i0
	for ; i+1 < i1; i += 2 {
		ar0 := a.V32[i*kk : i*kk+kk]
		ar1 := a.V32[(i+1)*kk : (i+1)*kk+kk]
		dr0 := dst.V32[i*n : i*n+n]
		dr1 := dst.V32[(i+1)*n : (i+1)*n+n]
		j := 0
		for ; j+1 < n; j += 2 {
			br0 := b.V32[j*kk : j*kk+kk]
			br1 := b.V32[(j+1)*kk : (j+1)*kk+kk]
			var s00, s01, s10, s11 float32
			for k, a0 := range ar0 {
				a1 := ar1[k]
				b0 := br0[k]
				b1 := br1[k]
				s00 += a0 * b0
				s01 += a0 * b1
				s10 += a1 * b0
				s11 += a1 * b1
			}
			dr0[j] = s00
			dr0[j+1] = s01
			dr1[j] = s10
			dr1[j+1] = s11
		}
		if j < n {
			brow := b.V32[j*kk : j*kk+kk]
			dr0[j] = dotSeq32(ar0, brow)
			dr1[j] = dotSeq32(ar1, brow)
		}
	}
	if i < i1 {
		arow := a.V32[i*kk : i*kk+kk]
		drow := dst.V32[i*n : i*n+n]
		for j := 0; j < n; j++ {
			drow[j] = dotSeq32(arow, b.V32[j*kk:j*kk+kk])
		}
	}
}

// dotSeq32 is the single-chain float32 inner product used by the 2×2 tile's
// edge rows and columns, fixing each dst element's accumulation order
// independent of the row partition (see dotSeq).
func dotSeq32(a, b []float32) float32 {
	var s float32
	for k, av := range a {
		s += av * b[k]
	}
	return s
}
