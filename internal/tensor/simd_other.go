//go:build !amd64

package tensor

// Non-amd64 builds run the pure-Go float32 kernels; the scalar expressions
// accumulate in the same order as the AVX2 paths, so results are portable
// bit for bit wherever the platform's scalar float32 ops are IEEE-exact.

const vecEnabled = false

// Vectorized reports whether the float32 kernels are using SIMD paths.
func Vectorized() bool { return false }

func setVectorized(on bool) bool { return !on }

func axpy4x32(dst, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
	panic("tensor: axpy4x32 without SIMD support")
}

func axpy1x32(dst, b []float32, a float32) {
	panic("tensor: axpy1x32 without SIMD support")
}
