package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGSeedsDiverge(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("nearby seeds collided %d times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %v", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Intn(5) did not cover all values: %v", seen)
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(99)
	n := 50000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("normal mean too far from 0: %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance too far from 1: %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitDecorrelates(t *testing.T) {
	r := NewRNG(5)
	s := r.Split()
	if r.Uint64() == s.Uint64() {
		t.Fatal("split stream equals parent stream")
	}
}

func TestFillUniformBounds(t *testing.T) {
	r := NewRNG(3)
	m := New(10, 10)
	r.FillUniform(m, -2, 3)
	for _, v := range m.V {
		if v < -2 || v >= 3 {
			t.Fatalf("uniform fill out of bounds: %v", v)
		}
	}
}

func TestRangeBounds(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		v := r.Range(5, 6)
		if v < 5 || v >= 6 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}
