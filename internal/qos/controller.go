package qos

// ControllerConfig tunes the hysteresis state machine. Zero values take
// the documented defaults, so an empty config is a working controller.
type ControllerConfig struct {
	// HighWater is the queue occupancy (0..1] at or above which the
	// controller counts an observation toward degrading. Default 0.75.
	HighWater float64
	// LowWater is the occupancy at or below which the controller counts
	// an observation toward restoring. Default 0.25.
	LowWater float64
	// Patience is the number of consecutive observations past a
	// watermark before the level steps once. Default 2.
	Patience int
	// MaxLevel caps how deep the ladder goes (1..MaxLevel). Default
	// MaxLevel (count + subsampling).
	MaxLevel int
}

func (c ControllerConfig) withDefaults() ControllerConfig {
	if c.HighWater == 0 {
		c.HighWater = 0.75
	}
	if c.LowWater == 0 {
		c.LowWater = 0.25
	}
	if c.Patience == 0 {
		c.Patience = 2
	}
	if c.MaxLevel == 0 || c.MaxLevel > MaxLevel {
		c.MaxLevel = MaxLevel
	}
	return c
}

// Controller is the per-stream hysteresis state machine. Each call to
// Observe feeds one queue-occupancy sample (one per drained batch) and
// returns the degradation level to apply to that batch. The two
// watermarks plus the patience counter give hysteresis: a single burst
// does not flap the level, and the mid-band (LowWater, HighWater) resets
// both counters so the level holds steady under sustainable load.
//
// Controller is not safe for concurrent use; each stream owns one and
// observes from its single Run loop.
type Controller struct {
	cfg         ControllerConfig
	level       int
	hot, cold   int
	transitions int
	decisions   []int
}

// NewController returns a controller at level 0 (full fidelity).
func NewController(cfg ControllerConfig) *Controller {
	return &Controller{cfg: cfg.withDefaults()}
}

// Observe feeds one occupancy sample (queued frames / capacity) and
// returns the level to apply to the batch about to be processed.
func (c *Controller) Observe(occupancy float64) int {
	switch {
	case occupancy >= c.cfg.HighWater:
		c.hot++
		c.cold = 0
	case occupancy <= c.cfg.LowWater:
		c.cold++
		c.hot = 0
	default:
		c.hot, c.cold = 0, 0
	}
	if c.hot >= c.cfg.Patience && c.level < c.cfg.MaxLevel {
		c.level++
		c.hot = 0
		c.transitions++
	}
	if c.cold >= c.cfg.Patience && c.level > 0 {
		c.level--
		c.cold = 0
		c.transitions++
	}
	c.decisions = append(c.decisions, c.level)
	return c.level
}

// Level returns the current degradation level.
func (c *Controller) Level() int { return c.level }

// Transitions returns how many level changes have occurred.
func (c *Controller) Transitions() int { return c.transitions }

// Decisions returns a copy of every level Observe has returned, in
// order. A recorded run can be replayed deterministically by applying
// the same sequence as a script.
func (c *Controller) Decisions() []int {
	out := make([]int, len(c.decisions))
	copy(out, c.decisions)
	return out
}
