package qos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"odin/internal/synth"
)

// DropPolicy selects what a full admission queue does with new frames.
type DropPolicy uint8

const (
	// Block applies backpressure: Push waits until the queue has space
	// (or the context/stream is done). No frame is ever dropped.
	Block DropPolicy = iota
	// DropNewest sheds the arriving frame when the queue is full. The
	// drop is counted and a marker keeps the frame's place in the
	// sequence so consumers see it was shed.
	DropNewest
	// DropOldest sheds the oldest queued frame to make room for the
	// arriving one, preferring fresh data under overload.
	DropOldest
)

// String returns the wire name of the policy.
func (p DropPolicy) String() string {
	switch p {
	case Block:
		return "block"
	case DropNewest:
		return "drop-newest"
	case DropOldest:
		return "drop-oldest"
	default:
		return fmt.Sprintf("droppolicy(%d)", uint8(p))
	}
}

// ParseDropPolicy maps a wire name back to its policy.
func ParseDropPolicy(s string) (DropPolicy, error) {
	switch s {
	case "block":
		return Block, nil
	case "drop-newest":
		return DropNewest, nil
	case "drop-oldest":
		return DropOldest, nil
	}
	return Block, fmt.Errorf("qos: unknown drop policy %q (want block, drop-newest, or drop-oldest)", s)
}

// ErrClosed is returned by Push after Close, and by Pop once the queue is
// both closed and drained.
var ErrClosed = errors.New("qos: queue closed")

// Entry is one slot handed out by Pop: either a real admitted frame
// (Frame non-nil, DropN zero) or a coalesced drop marker covering the
// DropN consecutive shed frames with sequence numbers [Seq, Seq+DropN).
// Markers keep the admitted/dropped ledger exact — every pushed frame is
// represented exactly once across the entries a queue ever emits — while
// storage stays bounded by the queue capacity.
type Entry struct {
	Frame *synth.Frame
	Seq   int
	DropN int
	// At is the frame's admission time, stamped only when the queue was
	// built with StampArrivals (observability on) — the consumer derives
	// the queue-wait stage metric from it. Zero otherwise, so the default
	// path pays no clock read.
	At time.Time
}

// Queue is the bounded admission queue in front of a Stream.Run session.
// One producer side (the intake goroutine plus Offer callers) pushes,
// one consumer (the Run loop) pops batches. The queue assigns sequence
// numbers at admission so drop markers and results share one ordering.
type Queue struct {
	mu       sync.Mutex
	entries  []Entry
	frames   int // real frames currently queued (≤ capacity)
	capacity int
	policy   DropPolicy
	closed   bool
	seq      int
	dropped  uint64
	rejected uint64
	stamp    bool // stamp Entry.At at admission (observability)

	arrive chan struct{} // pulsed when entries are added or the queue closes
	space  chan struct{} // pulsed when frames leave or the queue closes
}

// NewQueue returns an empty queue. Capacity must be ≥ 1.
func NewQueue(capacity int, policy DropPolicy) *Queue {
	if capacity < 1 {
		panic("qos: queue capacity must be >= 1")
	}
	return &Queue{
		capacity: capacity,
		policy:   policy,
		arrive:   make(chan struct{}, 1),
		space:    make(chan struct{}, 1),
	}
}

// StampArrivals makes the queue record each admitted frame's arrival time
// in Entry.At, enabling the consumer's queue-wait metric. Call before any
// Push; off by default so the uninstrumented path never reads the clock.
func (q *Queue) StampArrivals(on bool) {
	q.mu.Lock()
	q.stamp = on
	q.mu.Unlock()
}

func notify(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// Push admits one frame under the queue's drop policy. Under Block it
// waits for space, honoring ctx and done; under the drop policies it
// returns immediately, shedding the arriving or the oldest frame when
// full. The only errors are ErrClosed and the context's.
func (q *Queue) Push(ctx context.Context, done <-chan struct{}, f *synth.Frame) error {
	for {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return ErrClosed
		}
		if q.frames < q.capacity {
			q.pushLocked(f)
			q.mu.Unlock()
			return nil
		}
		switch q.policy {
		case DropNewest:
			q.markDropLocked(q.nextSeqLocked())
			q.mu.Unlock()
			notify(q.arrive)
			return nil
		case DropOldest:
			q.dropOldestLocked()
			q.pushLocked(f)
			q.mu.Unlock()
			return nil
		}
		q.mu.Unlock()
		select {
		case <-q.space:
		case <-ctx.Done():
			return ctx.Err()
		case <-done:
			return ErrClosed
		}
	}
}

// TryPush admits the frame if the queue has space and reports whether it
// did. A false return rejects the frame without assigning it a sequence
// number; the rejection is counted but the caller keeps the frame.
func (q *Queue) TryPush(f *synth.Frame) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.frames >= q.capacity {
		q.rejected++
		return false
	}
	q.pushLocked(f)
	return true
}

// pushLocked appends a real frame entry and wakes the consumer. If space
// remains it also cascades the space signal so other blocked pushers
// re-check (one Pop can free room for several).
func (q *Queue) pushLocked(f *synth.Frame) {
	e := Entry{Frame: f, Seq: q.nextSeqLocked()}
	if q.stamp {
		e.At = time.Now()
	}
	q.entries = append(q.entries, e)
	q.frames++
	if q.frames < q.capacity {
		notify(q.space)
	}
	notify(q.arrive)
}

func (q *Queue) nextSeqLocked() int {
	s := q.seq
	q.seq++
	return s
}

// markDropLocked records the shedding of the frame with sequence seq,
// coalescing into the tail marker when the drops are consecutive.
func (q *Queue) markDropLocked(seq int) {
	q.dropped++
	if n := len(q.entries); n > 0 && q.entries[n-1].DropN > 0 &&
		q.entries[n-1].Seq+q.entries[n-1].DropN == seq {
		q.entries[n-1].DropN++
		return
	}
	q.entries = append(q.entries, Entry{Seq: seq, DropN: 1})
}

// dropOldestLocked sheds the oldest queued real frame, converting its
// entry into a drop marker and merging with adjacent markers. The queue
// always holds a contiguous sequence range with each number represented
// exactly once, so adjacent markers are always mergeable.
func (q *Queue) dropOldestLocked() {
	i := 0
	for i < len(q.entries) && q.entries[i].DropN > 0 {
		i++
	}
	if i == len(q.entries) {
		return // no real frame queued; nothing to shed
	}
	q.entries[i] = Entry{Seq: q.entries[i].Seq, DropN: 1}
	q.frames--
	q.dropped++
	if i > 0 && q.entries[i-1].DropN > 0 {
		q.entries[i-1].DropN += q.entries[i].DropN
		q.entries = append(q.entries[:i], q.entries[i+1:]...)
		i--
	}
	if i+1 < len(q.entries) && q.entries[i+1].DropN > 0 {
		q.entries[i].DropN += q.entries[i+1].DropN
		q.entries = append(q.entries[:i+1], q.entries[i+2:]...)
	}
}

// Close marks the end of input: further pushes fail with ErrClosed and
// Pop drains the remaining entries before reporting ErrClosed itself.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	notify(q.arrive)
	notify(q.space)
}

// Pop blocks until at least one entry is queued (or the queue is closed
// and drained, returning ErrClosed) and removes up to maxFrames real
// frames from the head, along with every drop marker encountered.
// Entries come out in admission order.
func (q *Queue) Pop(ctx context.Context, done <-chan struct{}, maxFrames int) ([]Entry, error) {
	if maxFrames < 1 {
		maxFrames = 1
	}
	for {
		q.mu.Lock()
		if len(q.entries) > 0 {
			taken, real := 0, 0
			for taken < len(q.entries) {
				if q.entries[taken].DropN == 0 {
					if real == maxFrames {
						break
					}
					real++
				}
				taken++
			}
			out := q.entries[:taken:taken]
			q.entries = q.entries[taken:]
			q.frames -= real
			q.mu.Unlock()
			if real > 0 {
				notify(q.space)
			}
			return out, nil
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return nil, ErrClosed
		}
		select {
		case <-q.arrive:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-done:
			return nil, ErrClosed
		}
	}
}

// Depth returns the number of queued real frames and the capacity.
func (q *Queue) Depth() (frames, capacity int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.frames, q.capacity
}

// Dropped returns how many frames the drop policies have shed.
func (q *Queue) Dropped() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropped
}

// Rejected returns how many TryPush admissions were refused.
func (q *Queue) Rejected() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.rejected
}
