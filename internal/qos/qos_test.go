package qos

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"odin/internal/synth"
)

func frame(i int) *synth.Frame { return &synth.Frame{Index: i} }

func TestForLevelLadder(t *testing.T) {
	if got := ForLevel(0, 7, 2); got != Full {
		t.Fatalf("level 0 = %v, want full", got)
	}
	if got := ForLevel(1, 7, 2); got != Lite {
		t.Fatalf("level 1 = %v, want lite", got)
	}
	if got := ForLevel(2, 7, 2); got != Count {
		t.Fatalf("level 2 = %v, want count", got)
	}
	if got := ForLevel(3, 4, 2); got != Count {
		t.Fatalf("level 3 even seq = %v, want count", got)
	}
	if got := ForLevel(3, 5, 2); got != Skip {
		t.Fatalf("level 3 odd seq = %v, want skip", got)
	}
	if got := ForLevel(3, 5, 1); got != Count {
		t.Fatalf("level 3 subsample<=1 = %v, want count", got)
	}
	if Full.Degraded() || !Skip.Degraded() {
		t.Fatalf("Degraded: full=%v skip=%v", Full.Degraded(), Skip.Degraded())
	}
}

func TestDropPolicyRoundTrip(t *testing.T) {
	for _, p := range []DropPolicy{Block, DropNewest, DropOldest} {
		got, err := ParseDropPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: got %v err %v", p, got, err)
		}
	}
	if _, err := ParseDropPolicy("bogus"); err == nil {
		t.Fatalf("ParseDropPolicy(bogus) should fail")
	}
}

func TestControllerHysteresis(t *testing.T) {
	c := NewController(ControllerConfig{Patience: 2})
	// One hot sample is not enough (patience 2).
	if lvl := c.Observe(0.9); lvl != 0 {
		t.Fatalf("after 1 hot sample level=%d, want 0", lvl)
	}
	if lvl := c.Observe(0.9); lvl != 1 {
		t.Fatalf("after 2 hot samples level=%d, want 1", lvl)
	}
	// Mid-band holds the level and resets counters.
	if lvl := c.Observe(0.5); lvl != 1 {
		t.Fatalf("mid-band level=%d, want 1", lvl)
	}
	if lvl := c.Observe(0.9); lvl != 1 {
		t.Fatalf("hot counter should have reset, level=%d", lvl)
	}
	// Keep pressure on until the ladder bottom.
	for i := 0; i < 10; i++ {
		c.Observe(1.0)
	}
	if c.Level() != MaxLevel {
		t.Fatalf("sustained overload level=%d, want %d", c.Level(), MaxLevel)
	}
	// Cold samples walk it back up one step per patience window.
	if lvl := c.Observe(0.1); lvl != MaxLevel {
		t.Fatalf("after 1 cold sample level=%d, want %d", lvl, MaxLevel)
	}
	if lvl := c.Observe(0.1); lvl != MaxLevel-1 {
		t.Fatalf("after 2 cold samples level=%d, want %d", lvl, MaxLevel-1)
	}
	for i := 0; i < 10; i++ {
		c.Observe(0.0)
	}
	if c.Level() != 0 {
		t.Fatalf("sustained idle level=%d, want 0", c.Level())
	}
	if c.Transitions() == 0 {
		t.Fatalf("transitions not counted")
	}
	dec := c.Decisions()
	if len(dec) != 26 {
		t.Fatalf("decisions len=%d, want 26", len(dec))
	}
	if dec[1] != 1 || dec[len(dec)-1] != 0 {
		t.Fatalf("decision trace wrong: %v", dec)
	}
}

func TestQueueFIFOAndSeq(t *testing.T) {
	q := NewQueue(8, Block)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := q.Push(ctx, nil, frame(i)); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	got, err := q.Pop(ctx, nil, 3)
	if err != nil {
		t.Fatalf("pop: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("pop returned %d entries, want 3", len(got))
	}
	for i, e := range got {
		if e.Seq != i || e.Frame.Index != i || e.DropN != 0 {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
	q.Close()
	got, err = q.Pop(ctx, nil, 10)
	if err != nil || len(got) != 2 || got[0].Seq != 3 {
		t.Fatalf("drain pop: %v entries, err %v", got, err)
	}
	if _, err := q.Pop(ctx, nil, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("pop after drain: %v, want ErrClosed", err)
	}
	if err := q.Push(ctx, nil, frame(9)); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close: %v, want ErrClosed", err)
	}
}

func TestQueueDropNewestCoalesces(t *testing.T) {
	q := NewQueue(2, DropNewest)
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if err := q.Push(ctx, nil, frame(i)); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if q.Dropped() != 4 {
		t.Fatalf("dropped=%d, want 4", q.Dropped())
	}
	got, err := q.Pop(ctx, nil, 10)
	if err != nil {
		t.Fatalf("pop: %v", err)
	}
	// Frames 0,1 admitted; 2..5 coalesced into one marker.
	if len(got) != 3 {
		t.Fatalf("entries=%d (%+v), want 3", len(got), got)
	}
	if got[0].Seq != 0 || got[1].Seq != 1 {
		t.Fatalf("admitted seqs wrong: %+v", got)
	}
	if got[2].DropN != 4 || got[2].Seq != 2 || got[2].Frame != nil {
		t.Fatalf("marker wrong: %+v", got[2])
	}
}

func TestQueueDropOldestKeepsFresh(t *testing.T) {
	q := NewQueue(2, DropOldest)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := q.Push(ctx, nil, frame(i)); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if q.Dropped() != 3 {
		t.Fatalf("dropped=%d, want 3", q.Dropped())
	}
	got, err := q.Pop(ctx, nil, 10)
	if err != nil {
		t.Fatalf("pop: %v", err)
	}
	// Seqs 0,1,2 shed into one merged marker; 3,4 kept.
	if len(got) != 3 {
		t.Fatalf("entries=%d (%+v), want 3", len(got), got)
	}
	if got[0].DropN != 3 || got[0].Seq != 0 {
		t.Fatalf("marker wrong: %+v", got[0])
	}
	if got[1].Frame.Index != 3 || got[2].Frame.Index != 4 {
		t.Fatalf("kept frames wrong: %+v", got)
	}
}

func TestQueueTryPushRejects(t *testing.T) {
	q := NewQueue(1, Block)
	if !q.TryPush(frame(0)) {
		t.Fatalf("first TryPush should admit")
	}
	if q.TryPush(frame(1)) {
		t.Fatalf("TryPush on full queue should reject")
	}
	if q.Rejected() != 1 || q.Dropped() != 0 {
		t.Fatalf("rejected=%d dropped=%d, want 1/0", q.Rejected(), q.Dropped())
	}
	got, err := q.Pop(context.Background(), nil, 1)
	if err != nil || len(got) != 1 || got[0].Seq != 0 {
		t.Fatalf("pop: %v err %v", got, err)
	}
}

func TestQueueBlockBackpressure(t *testing.T) {
	q := NewQueue(2, Block)
	ctx := context.Background()
	var wg sync.WaitGroup
	pushed := make([]error, 6)
	for i := 0; i < 6; i++ {
		if i < 2 {
			if err := q.Push(ctx, nil, frame(i)); err != nil {
				t.Fatalf("push %d: %v", i, err)
			}
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pushed[i] = q.Push(ctx, nil, frame(i))
		}(i)
	}
	var all []Entry
	deadline := time.Now().Add(5 * time.Second)
	for len(all) < 6 {
		if time.Now().After(deadline) {
			t.Fatalf("timed out draining, got %d entries", len(all))
		}
		got, err := q.Pop(ctx, nil, 2)
		if err != nil {
			t.Fatalf("pop: %v", err)
		}
		all = append(all, got...)
	}
	wg.Wait()
	for i := 2; i < 6; i++ {
		if pushed[i] != nil {
			t.Fatalf("push %d: %v", i, pushed[i])
		}
	}
	if q.Dropped() != 0 {
		t.Fatalf("block policy dropped %d frames", q.Dropped())
	}
	seen := map[int]bool{}
	for i, e := range all {
		if e.DropN != 0 {
			t.Fatalf("unexpected marker %+v", e)
		}
		if e.Seq != i {
			t.Fatalf("entry %d has seq %d, want in-order seqs", i, e.Seq)
		}
		seen[e.Frame.Index] = true
	}
	if len(seen) != 6 {
		t.Fatalf("saw %d distinct frames, want 6", len(seen))
	}
}

func TestQueuePopHonorsCancel(t *testing.T) {
	q := NewQueue(1, Block)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := q.Pop(ctx, nil, 1)
		errc <- err
	}()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("pop returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("pop did not honor cancellation")
	}
}
