// Package qos is the serving-side quality-of-service layer: a fidelity
// ladder for load-adaptive degradation, bounded admission queues with
// explicit drop policies, and a hysteresis controller that walks streams
// down the ladder under measured overload and back up as load falls
// (DESIGN.md §11).
//
// The package deliberately knows nothing about the pipeline: core stamps
// fidelities onto results, dispatch carries them alongside frames, and the
// facade owns the controller. qos itself is pure bookkeeping, which keeps
// the degradation decisions replayable — the determinism contract is that
// identical admission decisions (same per-frame fidelity assignment, same
// drops) produce bit-identical results at any worker count.
package qos

import "fmt"

// Fidelity is the per-frame treatment level. The ladder is ordered from
// most to least work; Full is the zero value so legacy paths that never
// mention fidelity are implicitly full-fidelity.
type Fidelity uint8

const (
	// Full runs the frame through the complete pipeline: projection,
	// drift bookkeeping, and every model the plan selects, with fused
	// detections materialised.
	Full Fidelity = iota
	// Lite keeps detection but degrades the plan to its single cheapest
	// model (highest simulated FPS, ties broken by selection order) —
	// ensembles collapse, specialized-over-lite preferences are ignored.
	Lite
	// Count pushes the query down to counting: the cheapest model runs
	// its count kernel and only Result.Count is materialised, never the
	// detection boxes.
	Count
	// Skip bypasses the pipeline entirely: no projection, no drift
	// bookkeeping, no detection. The frame still yields a Result (with
	// ClusterID -1 and the current model generation) so admitted frames
	// are never silently lost.
	Skip
)

// String returns the wire name of the fidelity level.
func (f Fidelity) String() string {
	switch f {
	case Full:
		return "full"
	case Lite:
		return "lite"
	case Count:
		return "count"
	case Skip:
		return "skip"
	default:
		return fmt.Sprintf("fidelity(%d)", uint8(f))
	}
}

// Degraded reports whether the level is below full fidelity.
func (f Fidelity) Degraded() bool { return f != Full }

// MaxLevel is the deepest degradation level of the ladder. Levels map to
// fidelities via ForLevel: 0 → Full, 1 → Lite, 2 → Count, 3 → Count with
// Skip subsampling.
const MaxLevel = 3

// ForLevel maps a degradation level to the fidelity of the frame with
// sequence number seq. Levels 0–2 are uniform; at level 3 only one frame
// in every subsampleEvery is processed (as Count) and the rest are
// skipped, so the stream keeps a sparse signal while shedding almost all
// work. subsampleEvery ≤ 1 degenerates to uniform Count.
func ForLevel(level int, seq int, subsampleEvery int) Fidelity {
	switch {
	case level <= 0:
		return Full
	case level == 1:
		return Lite
	case level == 2:
		return Count
	default:
		if subsampleEvery <= 1 || seq%subsampleEvery == 0 {
			return Count
		}
		return Skip
	}
}
