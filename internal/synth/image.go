// Package synth procedurally generates the three datasets used by the
// paper's evaluation: an MNIST-like digit set, a CIFAR-like textured-class
// set, and a BDD100K-like dash-cam scene stream with ground-truth object
// boxes and environment domains (time-of-day × weather × location). See
// DESIGN.md §1 for why these substitutions preserve the paper's behaviour.
package synth

import (
	"fmt"
	"math"
)

// Image is a channel-major C×H×W image with float64 pixels in [0, 1].
type Image struct {
	C, H, W int
	Pix     []float64
}

// NewImage returns an all-black image.
func NewImage(c, h, w int) *Image {
	return &Image{C: c, H: h, W: w, Pix: make([]float64, c*h*w)}
}

// At returns the pixel value of channel ch at (x, y). Out-of-bounds reads
// return 0.
func (im *Image) At(ch, y, x int) float64 {
	if x < 0 || x >= im.W || y < 0 || y >= im.H {
		return 0
	}
	return im.Pix[ch*im.H*im.W+y*im.W+x]
}

// Set assigns the pixel value of channel ch at (x, y), clamping to [0, 1].
// Out-of-bounds writes are ignored.
func (im *Image) Set(ch, y, x int, v float64) {
	if x < 0 || x >= im.W || y < 0 || y >= im.H {
		return
	}
	im.Pix[ch*im.H*im.W+y*im.W+x] = clamp01(v)
}

// Add accumulates v into the pixel, clamping to [0, 1].
func (im *Image) Add(ch, y, x int, v float64) {
	im.Set(ch, y, x, im.At(ch, y, x)+v)
}

// SetRGB writes an RGB triple at (x, y). For grayscale images only channel
// 0 is written.
func (im *Image) SetRGB(y, x int, r, g, b float64) {
	if im.C == 1 {
		im.Set(0, y, x, (r+g+b)/3)
		return
	}
	im.Set(0, y, x, r)
	im.Set(1, y, x, g)
	im.Set(2, y, x, b)
}

// FillRect paints an axis-aligned rectangle [x0,x1)×[y0,y1) with an RGB
// colour.
func (im *Image) FillRect(y0, x0, y1, x1 int, r, g, b float64) {
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			im.SetRGB(y, x, r, g, b)
		}
	}
}

// Fill paints the entire image with an RGB colour.
func (im *Image) Fill(r, g, b float64) { im.FillRect(0, 0, im.H, im.W, r, g, b) }

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := NewImage(im.C, im.H, im.W)
	copy(out.Pix, im.Pix)
	return out
}

// Flat returns the raw pixel slice (aliased, channel-major), the row format
// expected by the nn package.
func (im *Image) Flat() []float64 { return im.Pix }

// Dim returns the flattened dimensionality C*H*W.
func (im *Image) Dim() int { return im.C * im.H * im.W }

// Mean returns the average pixel intensity across all channels.
func (im *Image) Mean() float64 {
	var s float64
	for _, v := range im.Pix {
		s += v
	}
	return s / float64(len(im.Pix))
}

// Scale multiplies every pixel by f, clamping to [0,1]. f<1 darkens (night),
// f>1 brightens.
func (im *Image) Scale(f float64) {
	for i, v := range im.Pix {
		im.Pix[i] = clamp01(v * f)
	}
}

// BlendToward moves every pixel a fraction t of the way toward the grey
// level g — the fog / overcast operator.
func (im *Image) BlendToward(g, t float64) {
	for i, v := range im.Pix {
		im.Pix[i] = clamp01(v + (g-v)*t)
	}
}

// Desaturate pulls colour channels toward their luminance by fraction t.
func (im *Image) Desaturate(t float64) {
	if im.C != 3 {
		return
	}
	hw := im.H * im.W
	for p := 0; p < hw; p++ {
		r, g, b := im.Pix[p], im.Pix[hw+p], im.Pix[2*hw+p]
		l := 0.299*r + 0.587*g + 0.114*b
		im.Pix[p] = clamp01(r + (l-r)*t)
		im.Pix[hw+p] = clamp01(g + (l-g)*t)
		im.Pix[2*hw+p] = clamp01(b + (l-b)*t)
	}
}

// String describes the image shape.
func (im *Image) String() string { return fmt.Sprintf("Image(%dx%dx%d)", im.C, im.H, im.W) }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Downsample averages blocks to produce an image 1/factor the size in each
// spatial dimension; used to feed the DA-GAN a lower-resolution manifold.
func (im *Image) Downsample(factor int) *Image {
	oh := im.H / factor
	ow := im.W / factor
	out := NewImage(im.C, oh, ow)
	inv := 1 / float64(factor*factor)
	for c := 0; c < im.C; c++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				var s float64
				for dy := 0; dy < factor; dy++ {
					for dx := 0; dx < factor; dx++ {
						s += im.At(c, y*factor+dy, x*factor+dx)
					}
				}
				out.Set(c, y, x, s*inv)
			}
		}
	}
	return out
}

// Grayscale collapses an RGB image to a single luminance channel.
func (im *Image) Grayscale() *Image {
	if im.C == 1 {
		return im.Clone()
	}
	out := NewImage(1, im.H, im.W)
	hw := im.H * im.W
	for p := 0; p < hw; p++ {
		out.Pix[p] = clamp01(0.299*im.Pix[p] + 0.587*im.Pix[hw+p] + 0.114*im.Pix[2*hw+p])
	}
	return out
}

// DrawLine draws a 1px line from (x0,y0) to (x1,y1) with an RGB colour
// (Bresenham).
func (im *Image) DrawLine(y0, x0, y1, x1 int, r, g, b float64) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx := 1
	if x0 > x1 {
		sx = -1
	}
	sy := 1
	if y0 > y1 {
		sy = -1
	}
	e := dx + dy
	for {
		im.SetRGB(y0, x0, r, g, b)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * e
		if e2 >= dy {
			e += dy
			x0 += sx
		}
		if e2 <= dx {
			e += dx
			y0 += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// DrawDisc paints a filled circle of radius rad centred at (cx, cy).
func (im *Image) DrawDisc(cy, cx int, rad float64, r, g, b float64) {
	ir := int(math.Ceil(rad))
	for y := cy - ir; y <= cy+ir; y++ {
		for x := cx - ir; x <= cx+ir; x++ {
			dy := float64(y - cy)
			dx := float64(x - cx)
			if dy*dy+dx*dx <= rad*rad {
				im.SetRGB(y, x, r, g, b)
			}
		}
	}
}
