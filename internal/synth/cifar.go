package synth

import (
	"math"

	"odin/internal/tensor"
)

// CIFARSize is the side length of generated texture-class images, matching
// CIFAR-10.
const CIFARSize = 32

// CIFARClasses is the number of texture classes.
const CIFARClasses = 10

// TextureGen procedurally renders CIFAR-like 32×32 RGB images from ten
// parametric texture families. Each family has a characteristic structure
// (stripes, checks, rings, blobs, …) and hue range, with per-sample jitter,
// so class-conditional appearance statistics differ the way natural image
// classes do.
type TextureGen struct {
	rng *tensor.RNG
	// Noise is the standard deviation of additive pixel noise.
	Noise float64
}

// NewTextureGen returns a texture generator with the given seed.
func NewTextureGen(seed uint64) *TextureGen {
	return &TextureGen{rng: tensor.NewRNG(seed), Noise: 0.04}
}

// classPalette returns a class-characteristic base colour with jitter.
func (g *TextureGen) classPalette(class int) (r, gg, b float64) {
	base := [CIFARClasses][3]float64{
		{0.35, 0.55, 0.85}, // 0: sky blues
		{0.75, 0.25, 0.25}, // 1: reds
		{0.30, 0.65, 0.35}, // 2: greens
		{0.80, 0.65, 0.25}, // 3: ochres
		{0.55, 0.35, 0.70}, // 4: violets
		{0.85, 0.50, 0.20}, // 5: oranges
		{0.25, 0.60, 0.65}, // 6: teals
		{0.60, 0.60, 0.60}, // 7: greys
		{0.80, 0.35, 0.55}, // 8: pinks
		{0.40, 0.45, 0.25}, // 9: olives
	}[class]
	j := func(v float64) float64 { return clamp01(v + g.rng.Range(-0.08, 0.08)) }
	return j(base[0]), j(base[1]), j(base[2])
}

// Generate renders one image of the given texture class (0–9).
func (g *TextureGen) Generate(class int) *Image {
	if class < 0 || class >= CIFARClasses {
		panic("synth: texture class out of range")
	}
	im := NewImage(3, CIFARSize, CIFARSize)
	r, gg, b := g.classPalette(class)
	r2, g2, b2 := clamp01(r*0.4), clamp01(gg*0.4), clamp01(b*0.4)
	rng := g.rng

	switch class {
	case 0: // horizontal stripes
		period := 3 + rng.Intn(4)
		phase := rng.Intn(period)
		for y := 0; y < CIFARSize; y++ {
			if (y+phase)/period%2 == 0 {
				im.FillRect(y, 0, y+1, CIFARSize, r, gg, b)
			} else {
				im.FillRect(y, 0, y+1, CIFARSize, r2, g2, b2)
			}
		}
	case 1: // vertical stripes
		period := 3 + rng.Intn(4)
		phase := rng.Intn(period)
		for x := 0; x < CIFARSize; x++ {
			if (x+phase)/period%2 == 0 {
				im.FillRect(0, x, CIFARSize, x+1, r, gg, b)
			} else {
				im.FillRect(0, x, CIFARSize, x+1, r2, g2, b2)
			}
		}
	case 2: // diagonal stripes
		period := 4 + rng.Intn(4)
		phase := rng.Intn(period)
		for y := 0; y < CIFARSize; y++ {
			for x := 0; x < CIFARSize; x++ {
				if (x+y+phase)/period%2 == 0 {
					im.SetRGB(y, x, r, gg, b)
				} else {
					im.SetRGB(y, x, r2, g2, b2)
				}
			}
		}
	case 3: // checkerboard
		cell := 3 + rng.Intn(4)
		for y := 0; y < CIFARSize; y++ {
			for x := 0; x < CIFARSize; x++ {
				if (x/cell+y/cell)%2 == 0 {
					im.SetRGB(y, x, r, gg, b)
				} else {
					im.SetRGB(y, x, r2, g2, b2)
				}
			}
		}
	case 4: // concentric rings
		cy := 16 + rng.Range(-4, 4)
		cx := 16 + rng.Range(-4, 4)
		period := 3.0 + rng.Range(0, 3)
		for y := 0; y < CIFARSize; y++ {
			for x := 0; x < CIFARSize; x++ {
				d := math.Hypot(float64(y)-cy, float64(x)-cx)
				if int(d/period)%2 == 0 {
					im.SetRGB(y, x, r, gg, b)
				} else {
					im.SetRGB(y, x, r2, g2, b2)
				}
			}
		}
	case 5: // random blobs
		im.Fill(r2, g2, b2)
		for i := 0; i < 6+rng.Intn(5); i++ {
			im.DrawDisc(rng.Intn(CIFARSize), rng.Intn(CIFARSize), 2+rng.Range(0, 4), r, gg, b)
		}
	case 6: // linear gradient
		angle := rng.Range(0, 2*math.Pi)
		dy, dx := math.Sin(angle), math.Cos(angle)
		for y := 0; y < CIFARSize; y++ {
			for x := 0; x < CIFARSize; x++ {
				t := clamp01(0.5 + (dy*(float64(y)-16)+dx*(float64(x)-16))/32)
				im.SetRGB(y, x, r2+(r-r2)*t, g2+(gg-g2)*t, b2+(b-b2)*t)
			}
		}
	case 7: // coarse random blocks
		cell := 4 + rng.Intn(4)
		for by := 0; by < CIFARSize; by += cell {
			for bx := 0; bx < CIFARSize; bx += cell {
				t := rng.Float64()
				im.FillRect(by, bx, by+cell, bx+cell, r2+(r-r2)*t, g2+(gg-g2)*t, b2+(b-b2)*t)
			}
		}
	case 8: // plus/cross shape on plain background
		im.Fill(r2, g2, b2)
		w := 3 + rng.Intn(4)
		c := 16 + rng.Intn(5) - 2
		im.FillRect(c-w/2, 4, c-w/2+w, CIFARSize-4, r, gg, b)
		im.FillRect(4, c-w/2, CIFARSize-4, c-w/2+w, r, gg, b)
	case 9: // diagonal half-plane (triangle)
		off := rng.Range(-8, 8)
		for y := 0; y < CIFARSize; y++ {
			for x := 0; x < CIFARSize; x++ {
				if float64(x)+off > float64(y) {
					im.SetRGB(y, x, r, gg, b)
				} else {
					im.SetRGB(y, x, r2, g2, b2)
				}
			}
		}
	}

	if g.Noise > 0 {
		for i := range im.Pix {
			im.Pix[i] = clamp01(im.Pix[i] + rng.Norm()*g.Noise)
		}
	}
	return im
}

// TextureDataset renders n images per listed class.
func TextureDataset(seed uint64, classes []int, nPerClass int) []LabeledImage {
	gen := NewTextureGen(seed)
	var out []LabeledImage
	for _, c := range classes {
		for i := 0; i < nPerClass; i++ {
			out = append(out, LabeledImage{Image: gen.Generate(c), Label: c})
		}
	}
	return out
}
