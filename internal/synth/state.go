package synth

// GenState is a value snapshot of a SceneGen's progress: the scene
// configuration, the raw RNG state and the number of frames generated so
// far. A generator rebuilt via GenFromState produces the exact frame
// sequence (pixels, boxes and indices) the captured generator would have.
type GenState struct {
	Cfg SceneConfig
	RNG uint64
	N   int
}

// State snapshots the generator.
func (s *SceneGen) State() GenState {
	return GenState{Cfg: s.cfg, RNG: s.rng.State(), N: s.n}
}

// GenFromState rebuilds a generator from a snapshot.
func GenFromState(st GenState) *SceneGen {
	g := NewSceneGen(0, st.Cfg)
	g.rng.SetState(st.RNG)
	g.n = st.N
	return g
}
