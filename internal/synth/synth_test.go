package synth

import (
	"math"
	"testing"

	"odin/internal/tensor"
)

func newTestRNG(seed uint64) *tensor.RNG { return tensor.NewRNG(seed) }

func TestDigitGenDeterministic(t *testing.T) {
	a := NewDigitGen(7).Generate(3)
	b := NewDigitGen(7).Generate(3)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("same seed must render identical digits")
		}
	}
}

func TestDigitGenRangeAndInk(t *testing.T) {
	g := NewDigitGen(1)
	for d := 0; d < 10; d++ {
		im := g.Generate(d)
		if im.H != DigitSize || im.W != DigitSize || im.C != 1 {
			t.Fatalf("digit shape wrong: %v", im)
		}
		var ink float64
		for _, v := range im.Pix {
			if v < 0 || v > 1 {
				t.Fatalf("pixel out of range: %v", v)
			}
			ink += v
		}
		if ink < 10 {
			t.Fatalf("digit %d is nearly blank (ink=%v)", d, ink)
		}
	}
}

func TestDigitGenPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDigitGen(1).Generate(10)
}

// meanImage averages a set of images per pixel.
func meanImage(ims []*Image) []float64 {
	out := make([]float64, len(ims[0].Pix))
	for _, im := range ims {
		for i, v := range im.Pix {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(ims))
	}
	return out
}

// TestDigitsClassStructure: mean intra-class L2 distance must be smaller
// than mean inter-class distance — the property outlier detection relies on.
func TestDigitsClassStructure(t *testing.T) {
	g := NewDigitGen(11)
	var ones, eights []*Image
	for i := 0; i < 30; i++ {
		ones = append(ones, g.Generate(1))
		eights = append(eights, g.Generate(8))
	}
	m1 := meanImage(ones)
	m8 := meanImage(eights)
	inter := tensor.L2(m1, m8)
	var intra float64
	for _, im := range ones {
		intra += tensor.L2(im.Pix, m1)
	}
	intra /= float64(len(ones))
	if inter < intra {
		t.Fatalf("digit classes not separable: inter=%v intra=%v", inter, intra)
	}
}

func TestDigitDatasetLabels(t *testing.T) {
	ds := DigitDataset(5, []int{0, 1, 2}, 4)
	if len(ds) != 12 {
		t.Fatalf("dataset size %d", len(ds))
	}
	counts := map[int]int{}
	for _, li := range ds {
		counts[li.Label]++
	}
	for _, c := range []int{0, 1, 2} {
		if counts[c] != 4 {
			t.Fatalf("class %d has %d samples", c, counts[c])
		}
	}
}

func TestTextureGenAllClasses(t *testing.T) {
	g := NewTextureGen(3)
	for c := 0; c < CIFARClasses; c++ {
		im := g.Generate(c)
		if im.H != CIFARSize || im.W != CIFARSize || im.C != 3 {
			t.Fatalf("texture shape wrong for class %d", c)
		}
		for _, v := range im.Pix {
			if v < 0 || v > 1 {
				t.Fatalf("pixel out of range: %v", v)
			}
		}
	}
}

func TestTextureGenPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTextureGen(1).Generate(CIFARClasses)
}

func TestTextureClassStructure(t *testing.T) {
	g := NewTextureGen(17)
	var a, b []*Image
	for i := 0; i < 25; i++ {
		a = append(a, g.Generate(0))
		b = append(b, g.Generate(4))
	}
	ma, mb := meanImage(a), meanImage(b)
	inter := tensor.L2(ma, mb)
	var intra float64
	for _, im := range a {
		intra += tensor.L2(im.Pix, ma)
	}
	intra /= float64(len(a))
	if inter < intra*0.5 {
		t.Fatalf("texture classes not separable: inter=%v intra=%v", inter, intra)
	}
}

func TestSceneGenFrameShape(t *testing.T) {
	g := NewSceneGen(1, DefaultSceneConfig())
	f := g.Generate(Domain{Time: Day, Weather: Clear})
	if f.Image.H != 27 || f.Image.W != 48 || f.Image.C != 3 {
		t.Fatalf("frame shape: %v", f.Image)
	}
	if len(f.Boxes) == 0 {
		t.Fatal("frame should contain objects")
	}
	for _, b := range f.Boxes {
		if b.X < 0 || b.Y < -1 || b.X+b.W > float64(f.Image.W)+2 || b.Y+b.H > float64(f.Image.H)+2 {
			t.Fatalf("box out of frame: %+v", b)
		}
		if b.W <= 0 || b.H <= 0 {
			t.Fatalf("degenerate box: %+v", b)
		}
	}
}

func TestSceneFrameIndicesIncrement(t *testing.T) {
	g := NewSceneGen(1, DefaultSceneConfig())
	f0 := g.Generate(Domain{Time: Day})
	f1 := g.Generate(Domain{Time: Day})
	if f0.Index != 0 || f1.Index != 1 {
		t.Fatalf("frame indices: %d %d", f0.Index, f1.Index)
	}
}

// TestDomainAppearanceOrdering encodes the appearance physics the drift
// detector relies on: night frames are much darker than day frames; foggy
// frames have less contrast than clear frames.
func TestDomainAppearanceOrdering(t *testing.T) {
	g := NewSceneGen(5, DefaultSceneConfig())
	meanOf := func(d Domain, n int) float64 {
		var s float64
		for i := 0; i < n; i++ {
			s += g.Generate(d).Image.Mean()
		}
		return s / float64(n)
	}
	day := meanOf(Domain{Time: Day, Weather: Clear}, 20)
	night := meanOf(Domain{Time: Night, Weather: Clear}, 20)
	snow := meanOf(Domain{Time: Day, Weather: Snowy}, 20)
	if night > day*0.6 {
		t.Fatalf("night (%v) should be much darker than day (%v)", night, day)
	}
	if snow < day {
		t.Fatalf("snow (%v) should be brighter than clear day (%v)", snow, day)
	}

	contrastOf := func(d Domain, n int) float64 {
		var s float64
		for i := 0; i < n; i++ {
			im := g.Generate(d).Image
			s += math.Sqrt(tensor.Variance(im.Pix))
		}
		return s / float64(n)
	}
	clear := contrastOf(Domain{Time: Day, Weather: Clear}, 15)
	foggy := contrastOf(Domain{Time: Day, Weather: Foggy}, 15)
	if foggy > clear {
		t.Fatalf("fog (%v) should reduce contrast vs clear (%v)", foggy, clear)
	}
}

func TestSubsetContains(t *testing.T) {
	cases := []struct {
		s    Subset
		d    Domain
		want bool
	}{
		{DayData, Domain{Time: Day, Weather: Clear}, true},
		{DayData, Domain{Time: Night, Weather: Clear}, false},
		{DayData, Domain{Time: Day, Weather: Rainy}, false},
		{NightData, Domain{Time: Night, Weather: Snowy}, true},
		{NightData, Domain{Time: Day, Weather: Clear}, false},
		{RainData, Domain{Time: Day, Weather: Rainy}, true},
		{RainData, Domain{Time: Day, Weather: Overcast}, true},
		{RainData, Domain{Time: Night, Weather: Rainy}, false},
		{SnowData, Domain{Time: Day, Weather: Snowy}, true},
		{SnowData, Domain{Time: Night, Weather: Snowy}, false},
		{FullData, Domain{Time: Night, Weather: Foggy}, true},
	}
	for _, c := range cases {
		if got := c.s.Contains(c.d); got != c.want {
			t.Fatalf("%v.Contains(%v) = %v, want %v", c.s, c.d, got, c.want)
		}
	}
}

func TestSampleDomainRespectsSubset(t *testing.T) {
	rng := tensor.NewRNG(9)
	for _, s := range AllSubsets {
		for i := 0; i < 200; i++ {
			d := s.SampleDomain(rng)
			if !s.Contains(d) {
				t.Fatalf("%v sampled out-of-subset domain %v", s, d)
			}
		}
	}
}

func TestLabeledSubsetsCount(t *testing.T) {
	subs := LabeledSubsets()
	if len(subs) != 15 {
		t.Fatalf("expected 15 weather×time subsets, got %d", len(subs))
	}
	seen := map[string]bool{}
	for _, d := range subs {
		if seen[d.String()] {
			t.Fatalf("duplicate subset %v", d)
		}
		seen[d.String()] = true
	}
}

func TestDatasetSizes(t *testing.T) {
	g := NewSceneGen(2, DefaultSceneConfig())
	ds := g.Dataset(DayData, 10)
	if len(ds) != 10 {
		t.Fatalf("dataset size %d", len(ds))
	}
	for _, f := range ds {
		if !DayData.Contains(f.Domain) {
			t.Fatalf("frame domain %v outside subset", f.Domain)
		}
	}
	dd := g.DatasetDomain(Domain{Time: Night, Weather: Rainy}, 5)
	for _, f := range dd {
		if f.Domain.Time != Night || f.Domain.Weather != Rainy {
			t.Fatal("DatasetDomain must use the fixed domain")
		}
	}
}

func TestClassNames(t *testing.T) {
	if ClassName(ClassCar) != "car" || ClassName(ClassTruck) != "truck" {
		t.Fatal("class names wrong")
	}
	if ClassByName("car") != ClassCar {
		t.Fatal("ClassByName(car)")
	}
	if ClassByName("dragon") != -1 {
		t.Fatal("unknown class should map to -1")
	}
	if ClassName(99) != "unknown" {
		t.Fatal("unknown id should map to 'unknown'")
	}
}

func TestDomainString(t *testing.T) {
	d := Domain{Time: Night, Weather: Rainy}
	if d.String() != "rainy-night" {
		t.Fatalf("domain string: %v", d.String())
	}
}

// TestTrucksRarerThanCars verifies the class imbalance Table 6 relies on.
func TestTrucksRarerThanCars(t *testing.T) {
	g := NewSceneGen(3, DefaultSceneConfig())
	cars, trucks := 0, 0
	for i := 0; i < 300; i++ {
		f := g.GenerateSubset(FullData)
		for _, b := range f.Boxes {
			switch b.Class {
			case ClassCar:
				cars++
			case ClassTruck:
				trucks++
			}
		}
	}
	if trucks >= cars/2 {
		t.Fatalf("trucks (%d) should be much rarer than cars (%d)", trucks, cars)
	}
}
