package synth

import (
	"math"
	"testing"
	"testing/quick"
)

func TestImageSetAtBounds(t *testing.T) {
	im := NewImage(1, 4, 4)
	im.Set(0, 2, 3, 0.5)
	if im.At(0, 2, 3) != 0.5 {
		t.Fatal("set/at roundtrip failed")
	}
	// Out-of-bounds are silent no-ops / zeros.
	im.Set(0, -1, 0, 1)
	im.Set(0, 0, 99, 1)
	if im.At(0, -1, 0) != 0 || im.At(0, 0, 99) != 0 {
		t.Fatal("out-of-bounds access should read 0")
	}
}

func TestImageSetClamps(t *testing.T) {
	im := NewImage(1, 2, 2)
	im.Set(0, 0, 0, 1.7)
	im.Set(0, 0, 1, -0.5)
	if im.At(0, 0, 0) != 1 || im.At(0, 0, 1) != 0 {
		t.Fatal("Set must clamp to [0,1]")
	}
}

func TestFillRectAndMean(t *testing.T) {
	im := NewImage(3, 4, 4)
	im.Fill(1, 1, 1)
	if math.Abs(im.Mean()-1) > 1e-12 {
		t.Fatalf("mean=%v", im.Mean())
	}
	im2 := NewImage(3, 4, 4)
	im2.FillRect(0, 0, 2, 4, 1, 1, 1) // top half
	if math.Abs(im2.Mean()-0.5) > 1e-12 {
		t.Fatalf("half-fill mean=%v", im2.Mean())
	}
}

func TestScaleDarkens(t *testing.T) {
	im := NewImage(1, 2, 2)
	im.Fill(0.8, 0.8, 0.8)
	im.Scale(0.5)
	if math.Abs(im.At(0, 0, 0)-0.4) > 1e-12 {
		t.Fatal("scale failed")
	}
}

func TestBlendToward(t *testing.T) {
	im := NewImage(1, 1, 1)
	im.Set(0, 0, 0, 0.2)
	im.BlendToward(1.0, 0.5)
	if math.Abs(im.At(0, 0, 0)-0.6) > 1e-12 {
		t.Fatalf("blend=%v", im.At(0, 0, 0))
	}
}

func TestDesaturateMovesTowardLuma(t *testing.T) {
	im := NewImage(3, 1, 1)
	im.SetRGB(0, 0, 1, 0, 0)
	im.Desaturate(1)
	r, g, b := im.At(0, 0, 0), im.At(1, 0, 0), im.At(2, 0, 0)
	if math.Abs(r-g) > 1e-9 || math.Abs(g-b) > 1e-9 {
		t.Fatalf("full desaturation should be grey: %v %v %v", r, g, b)
	}
	if math.Abs(r-0.299) > 1e-9 {
		t.Fatalf("expected luminance 0.299, got %v", r)
	}
}

func TestDownsample(t *testing.T) {
	im := NewImage(1, 4, 4)
	im.FillRect(0, 0, 2, 2, 1, 1, 1) // top-left quadrant white
	d := im.Downsample(2)
	if d.H != 2 || d.W != 2 {
		t.Fatalf("downsample shape %dx%d", d.H, d.W)
	}
	if d.At(0, 0, 0) != 1 || d.At(0, 1, 1) != 0 {
		t.Fatalf("downsample values wrong: %v", d.Pix)
	}
}

func TestGrayscaleRange(t *testing.T) {
	im := NewImage(3, 2, 2)
	im.SetRGB(0, 0, 1, 1, 1)
	g := im.Grayscale()
	if g.C != 1 {
		t.Fatal("grayscale channels")
	}
	if math.Abs(g.At(0, 0, 0)-1) > 1e-9 {
		t.Fatalf("white should stay white: %v", g.At(0, 0, 0))
	}
}

func TestBoxIoU(t *testing.T) {
	a := Box{X: 0, Y: 0, W: 10, H: 10}
	b := Box{X: 0, Y: 0, W: 10, H: 10}
	if math.Abs(a.IoU(b)-1) > 1e-12 {
		t.Fatal("identical boxes should have IoU 1")
	}
	c := Box{X: 20, Y: 20, W: 5, H: 5}
	if a.IoU(c) != 0 {
		t.Fatal("disjoint boxes should have IoU 0")
	}
	d := Box{X: 5, Y: 0, W: 10, H: 10}
	// inter = 5*10 = 50, union = 100+100-50 = 150
	if math.Abs(a.IoU(d)-1.0/3) > 1e-9 {
		t.Fatalf("partial IoU=%v, want 1/3", a.IoU(d))
	}
}

func TestBoxIoUProperties(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := newTestRNG(seed)
		rb := func() Box {
			return Box{X: rng.Range(0, 20), Y: rng.Range(0, 20), W: rng.Range(1, 10), H: rng.Range(1, 10)}
		}
		a, b := rb(), rb()
		iou := a.IoU(b)
		return iou >= 0 && iou <= 1 && math.Abs(iou-b.IoU(a)) < 1e-12 && math.Abs(a.IoU(a)-1) < 1e-12
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDrawLineEndpoints(t *testing.T) {
	im := NewImage(1, 10, 10)
	im.DrawLine(1, 1, 8, 8, 1, 1, 1)
	if im.At(0, 1, 1) != 1 || im.At(0, 8, 8) != 1 {
		t.Fatal("line endpoints not drawn")
	}
}

func TestDrawDisc(t *testing.T) {
	im := NewImage(1, 10, 10)
	im.DrawDisc(5, 5, 2, 1, 1, 1)
	if im.At(0, 5, 5) != 1 {
		t.Fatal("disc centre not drawn")
	}
	if im.At(0, 0, 0) != 0 {
		t.Fatal("disc overdrawn")
	}
}
