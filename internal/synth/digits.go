package synth

import "odin/internal/tensor"

// DigitSize is the side length of generated digit images, matching MNIST.
const DigitSize = 28

// sevenSegments maps each digit 0–9 to its lit segments in the classic
// seven-segment layout: a (top), b (top-right), c (bottom-right),
// d (bottom), e (bottom-left), f (top-left), g (middle).
var sevenSegments = [10][7]bool{
	{true, true, true, true, true, true, false},     // 0
	{false, true, true, false, false, false, false}, // 1
	{true, true, false, true, true, false, true},    // 2
	{true, true, true, true, false, false, true},    // 3
	{false, true, true, false, false, true, true},   // 4
	{true, false, true, true, false, true, true},    // 5
	{true, false, true, true, true, true, true},     // 6
	{true, true, true, false, false, false, false},  // 7
	{true, true, true, true, true, true, true},      // 8
	{true, true, true, true, false, true, true},     // 9
}

// DigitGen procedurally renders MNIST-like 28×28 grayscale digits with
// per-sample stroke jitter, translation, scale and pixel noise, so that
// images of the same digit share structure while varying in appearance.
type DigitGen struct {
	rng *tensor.RNG
	// Noise is the standard deviation of additive pixel noise.
	Noise float64
}

// NewDigitGen returns a digit generator with the given seed.
func NewDigitGen(seed uint64) *DigitGen {
	return &DigitGen{rng: tensor.NewRNG(seed), Noise: 0.05}
}

// classStyle gives each digit class a characteristic geometry (slant,
// stroke weight, aspect), the way real MNIST digit shapes differ beyond
// their topology. Without this, the seven-segment digits would be mutually
// interpolable (every digit is a segment-subset of 8), which would make
// class-level outlier detection ill-posed.
var classStyle = [10]struct {
	slant, thick, wScale, hScale float64
}{
	{0.00, 1.6, 1.15, 1.00}, // 0: wide, heavy loop
	{0.18, 1.1, 0.55, 1.05}, // 1: narrow, slanted
	{-0.10, 1.4, 1.00, 0.95},
	{0.06, 1.2, 0.95, 1.00},
	{0.22, 1.3, 1.05, 0.90}, // 4: strong slant
	{-0.16, 1.5, 0.90, 1.00},
	{0.02, 1.8, 0.95, 1.10},  // 6: heavy, tall
	{0.26, 1.0, 1.00, 0.92},  // 7: thin, slanted
	{-0.04, 2.1, 1.20, 1.12}, // 8: heaviest, widest
	{0.14, 0.9, 0.80, 1.08},  // 9: thin, narrow, tall
}

// Generate renders one image of the given digit (0–9).
func (g *DigitGen) Generate(digit int) *Image {
	if digit < 0 || digit > 9 {
		panic("synth: digit out of range")
	}
	im := NewImage(1, DigitSize, DigitSize)
	rng := g.rng
	st := classStyle[digit]

	// Per-sample geometry jitter around the class style.
	cx := 14 + rng.Range(-2, 2)
	cy := 14 + rng.Range(-2, 2)
	halfW := (5 + rng.Range(-0.7, 1.0)) * st.wScale
	halfH := (8 + rng.Range(-1.0, 1.0)) * st.hScale
	thick := st.thick + rng.Range(-0.2, 0.4)
	ink := 0.75 + rng.Range(0, 0.25)
	slant := st.slant + rng.Range(-0.06, 0.06)

	// Segment endpoints in (y, x), relative to centre.
	type seg struct{ y0, x0, y1, x1 float64 }
	segs := [7]seg{
		{-halfH, -halfW, -halfH, halfW}, // a: top
		{-halfH, halfW, 0, halfW},       // b: top-right
		{0, halfW, halfH, halfW},        // c: bottom-right
		{halfH, -halfW, halfH, halfW},   // d: bottom
		{0, -halfW, halfH, -halfW},      // e: bottom-left
		{-halfH, -halfW, 0, -halfW},     // f: top-left
		{0, -halfW, 0, halfW},           // g: middle
	}
	for si, lit := range sevenSegments[digit] {
		if !lit {
			continue
		}
		s := segs[si]
		g.strokeLine(im,
			cy+s.y0, cx+s.x0+slant*s.y0,
			cy+s.y1, cx+s.x1+slant*s.y1,
			thick, ink)
	}

	if g.Noise > 0 {
		for i := range im.Pix {
			im.Pix[i] = clamp01(im.Pix[i] + rng.Norm()*g.Noise)
		}
	}
	return im
}

// strokeLine rasterises a thick antialiased-ish line by stamping discs
// along its length.
func (g *DigitGen) strokeLine(im *Image, y0, x0, y1, x1, thick, ink float64) {
	steps := int(2 * (absf(y1-y0) + absf(x1-x0)))
	if steps < 2 {
		steps = 2
	}
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		y := y0 + (y1-y0)*t
		x := x0 + (x1-x0)*t
		r := thick / 2
		for dy := -int(r) - 1; dy <= int(r)+1; dy++ {
			for dx := -int(r) - 1; dx <= int(r)+1; dx++ {
				py := int(y) + dy
				px := int(x) + dx
				ddy := float64(py) - y
				ddx := float64(px) - x
				d := ddy*ddy + ddx*ddx
				if d <= r*r {
					if ink > im.At(0, py, px) {
						im.Set(0, py, px, ink)
					}
				}
			}
		}
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// LabeledImage pairs an image with its class label.
type LabeledImage struct {
	Image *Image
	Label int
}

// DigitDataset renders n images per listed digit class.
func DigitDataset(seed uint64, classes []int, nPerClass int) []LabeledImage {
	gen := NewDigitGen(seed)
	var out []LabeledImage
	for _, c := range classes {
		for i := 0; i < nPerClass; i++ {
			out = append(out, LabeledImage{Image: gen.Generate(c), Label: c})
		}
	}
	return out
}
