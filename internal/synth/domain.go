package synth

import "odin/internal/tensor"

// TimeOfDay enumerates the BDD time-of-day attribute.
type TimeOfDay int

// Time-of-day values.
const (
	Dawn TimeOfDay = iota
	Day
	Night
)

// String returns the lowercase attribute name used in tables.
func (t TimeOfDay) String() string {
	switch t {
	case Dawn:
		return "dawn"
	case Day:
		return "day"
	case Night:
		return "night"
	}
	return "unknown"
}

// Weather enumerates the BDD weather attribute.
type Weather int

// Weather values.
const (
	Clear Weather = iota
	Foggy
	Overcast
	Rainy
	Snowy
)

// String returns the lowercase attribute name used in tables.
func (w Weather) String() string {
	switch w {
	case Clear:
		return "clear"
	case Foggy:
		return "foggy"
	case Overcast:
		return "overcast"
	case Rainy:
		return "rainy"
	case Snowy:
		return "snowy"
	}
	return "unknown"
}

// Location enumerates the BDD location attribute. The paper's DETECTOR
// found location unimportant for drift, so the renderer makes it a minor
// scene-composition attribute rather than a global appearance shift.
type Location int

// Location values.
const (
	City Location = iota
	Highway
	Residential
	OtherLocation
)

// String returns the lowercase attribute name used in tables.
func (l Location) String() string {
	switch l {
	case City:
		return "city"
	case Highway:
		return "highway"
	case Residential:
		return "residential"
	case OtherLocation:
		return "other"
	}
	return "unknown"
}

// Domain is one environment condition: the drift unit of the paper. The
// marginal distribution P(X) of frames differs across domains.
type Domain struct {
	Time     TimeOfDay
	Weather  Weather
	Location Location
}

// String renders "weather-time" (e.g. "rainy-day"), the subset naming used
// by Table 2.
func (d Domain) String() string { return d.Weather.String() + "-" + d.Time.String() }

// AllTimes lists every time-of-day value.
var AllTimes = []TimeOfDay{Dawn, Day, Night}

// AllWeathers lists every weather value.
var AllWeathers = []Weather{Clear, Foggy, Overcast, Rainy, Snowy}

// AllLocations lists every location value.
var AllLocations = []Location{City, Highway, Residential, OtherLocation}

// LabeledSubsets returns the paper's 15 weather×time subsets in a stable
// order (weather-major), as used by Table 2.
func LabeledSubsets() []Domain {
	var out []Domain
	for _, w := range AllWeathers {
		for _, t := range AllTimes {
			out = append(out, Domain{Time: t, Weather: w})
		}
	}
	return out
}

// Subset identifies one of the five evaluation data subsets the paper
// derives from the DETECTOR's clusters (§6.2, "BDD Clusters").
type Subset int

// The five evaluation subsets.
const (
	FullData Subset = iota
	DayData
	NightData
	RainData
	SnowData
)

// String returns the paper's subset name.
func (s Subset) String() string {
	switch s {
	case FullData:
		return "FULL-DATA"
	case DayData:
		return "DAY-DATA"
	case NightData:
		return "NIGHT-DATA"
	case RainData:
		return "RAIN-DATA"
	case SnowData:
		return "SNOW-DATA"
	}
	return "UNKNOWN"
}

// AllSubsets lists the five evaluation subsets in paper order.
var AllSubsets = []Subset{FullData, DayData, NightData, RainData, SnowData}

// Contains reports whether a domain belongs to the subset, mirroring the
// paper's definitions: DAY = clear day-time; NIGHT = night-time under any
// weather; RAIN = rainy or overcast outside night; SNOW = snowy outside
// night; FULL = everything.
func (s Subset) Contains(d Domain) bool {
	switch s {
	case FullData:
		return true
	case DayData:
		return d.Time == Day && d.Weather == Clear
	case NightData:
		return d.Time == Night
	case RainData:
		return d.Time != Night && (d.Weather == Rainy || d.Weather == Overcast)
	case SnowData:
		return d.Time != Night && d.Weather == Snowy
	}
	return false
}

// SampleDomain draws a domain from the subset's distribution. Day-time
// clear weather dominates FULL-DATA the way it dominates BDD (≈57% clear).
func (s Subset) SampleDomain(rng *tensor.RNG) Domain {
	loc := AllLocations[rng.Intn(len(AllLocations))]
	switch s {
	case DayData:
		return Domain{Time: Day, Weather: Clear, Location: loc}
	case NightData:
		// Night under any weather; clear dominates.
		w := Clear
		switch r := rng.Float64(); {
		case r < 0.70:
			w = Clear
		case r < 0.82:
			w = Overcast
		case r < 0.92:
			w = Rainy
		default:
			w = Snowy
		}
		return Domain{Time: Night, Weather: w, Location: loc}
	case RainData:
		t := Day
		if rng.Float64() < 0.15 {
			t = Dawn
		}
		w := Rainy
		if rng.Float64() < 0.5 {
			w = Overcast
		}
		return Domain{Time: t, Weather: w, Location: loc}
	case SnowData:
		t := Day
		if rng.Float64() < 0.2 {
			t = Dawn
		}
		return Domain{Time: t, Weather: Snowy, Location: loc}
	default: // FullData
		switch r := rng.Float64(); {
		case r < 0.51:
			return Domain{Time: Day, Weather: Clear, Location: loc}
		case r < 0.58:
			return Domain{Time: Dawn, Weather: Clear, Location: loc}
		case r < 0.78:
			return NightData.SampleDomain(rng)
		case r < 0.90:
			return RainData.SampleDomain(rng)
		default:
			return SnowData.SampleDomain(rng)
		}
	}
}
