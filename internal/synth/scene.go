package synth

import (
	"math"

	"odin/internal/tensor"
)

// Object classes present in the dash-cam scenes, a subset of BDD's ten
// classes chosen to cover the paper's queries (cars, trucks) plus the
// classes its dataflow figure names (person, traffic light, sign).
const (
	ClassCar = iota
	ClassTruck
	ClassPerson
	ClassTrafficLight
	ClassSign
	NumClasses
)

// ClassName returns the human-readable name of an object class.
func ClassName(c int) string {
	switch c {
	case ClassCar:
		return "car"
	case ClassTruck:
		return "truck"
	case ClassPerson:
		return "person"
	case ClassTrafficLight:
		return "traffic light"
	case ClassSign:
		return "sign"
	}
	return "unknown"
}

// ClassByName maps a lowercase class name back to its id, returning -1 when
// unknown. Used by the query engine's WHERE class='car' predicate.
func ClassByName(name string) int {
	for c := 0; c < NumClasses; c++ {
		if ClassName(c) == name {
			return c
		}
	}
	return -1
}

// Box is a ground-truth or predicted object box in pixel coordinates
// (top-left origin).
type Box struct {
	Class      int
	X, Y, W, H float64
}

// IoU returns the intersection-over-union of two boxes.
func (b Box) IoU(o Box) float64 {
	x0 := math.Max(b.X, o.X)
	y0 := math.Max(b.Y, o.Y)
	x1 := math.Min(b.X+b.W, o.X+o.W)
	y1 := math.Min(b.Y+b.H, o.Y+o.H)
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	inter := (x1 - x0) * (y1 - y0)
	union := b.W*b.H + o.W*o.H - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Frame is one video frame: the rendered image, its ground-truth boxes and
// the environment domain it was rendered under.
type Frame struct {
	Index  int
	Image  *Image
	Boxes  []Box
	Domain Domain
}

// SceneConfig controls the scene renderer.
type SceneConfig struct {
	H, W int // frame size; default 27×48 (16:9)
}

// DefaultSceneConfig returns the standard 48×27 RGB configuration.
func DefaultSceneConfig() SceneConfig { return SceneConfig{H: 27, W: 48} }

// SceneGen renders BDD-like dash-cam frames: sky, road, roadside, objects
// with ground-truth boxes, followed by domain-dependent global appearance
// transforms (illumination, fog, rain streaks, snow speckle) and emissive
// elements (traffic-light bulbs, head-lights at night).
type SceneGen struct {
	cfg SceneConfig
	rng *tensor.RNG
	n   int
}

// NewSceneGen returns a scene generator with the given seed.
func NewSceneGen(seed uint64, cfg SceneConfig) *SceneGen {
	if cfg.H == 0 || cfg.W == 0 {
		cfg = DefaultSceneConfig()
	}
	return &SceneGen{cfg: cfg, rng: tensor.NewRNG(seed)}
}

// Config returns the generator's scene configuration.
func (s *SceneGen) Config() SceneConfig { return s.cfg }

// horizon returns the y coordinate separating sky from ground.
func (s *SceneGen) horizon() int { return s.cfg.H * 2 / 5 }

// Generate renders one frame under the given domain.
func (s *SceneGen) Generate(d Domain) *Frame {
	im := NewImage(3, s.cfg.H, s.cfg.W)
	rng := s.rng
	hz := s.horizon()

	s.paintBackground(im, d, hz)
	boxes := s.placeObjects(im, d, hz)
	s.applyDomain(im, d, boxes)

	f := &Frame{Index: s.n, Image: im, Boxes: boxes, Domain: d}
	s.n++
	_ = rng
	return f
}

// GenerateSubset renders one frame from a domain sampled out of the subset.
func (s *SceneGen) GenerateSubset(sub Subset) *Frame {
	return s.Generate(sub.SampleDomain(s.rng))
}

// Dataset renders n frames from the subset's domain distribution.
func (s *SceneGen) Dataset(sub Subset, n int) []*Frame {
	out := make([]*Frame, n)
	for i := range out {
		out[i] = s.GenerateSubset(sub)
	}
	return out
}

// DatasetDomain renders n frames from a single fixed domain.
func (s *SceneGen) DatasetDomain(d Domain, n int) []*Frame {
	out := make([]*Frame, n)
	for i := range out {
		out[i] = s.Generate(d)
	}
	return out
}

func (s *SceneGen) paintBackground(im *Image, d Domain, hz int) {
	rng := s.rng
	// Sky gradient.
	var skyTop, skyBot [3]float64
	switch {
	case d.Time == Night:
		skyTop = [3]float64{0.05, 0.05, 0.12}
		skyBot = [3]float64{0.08, 0.08, 0.16}
	case d.Time == Dawn:
		skyTop = [3]float64{0.55, 0.40, 0.45}
		skyBot = [3]float64{0.85, 0.60, 0.40}
	case d.Weather == Overcast || d.Weather == Rainy:
		skyTop = [3]float64{0.55, 0.57, 0.60}
		skyBot = [3]float64{0.65, 0.67, 0.70}
	case d.Weather == Snowy:
		skyTop = [3]float64{0.75, 0.77, 0.80}
		skyBot = [3]float64{0.85, 0.86, 0.88}
	case d.Weather == Foggy:
		skyTop = [3]float64{0.70, 0.71, 0.72}
		skyBot = [3]float64{0.75, 0.76, 0.77}
	default: // clear day
		skyTop = [3]float64{0.35, 0.55, 0.90}
		skyBot = [3]float64{0.60, 0.75, 0.95}
	}
	for y := 0; y < hz; y++ {
		t := float64(y) / float64(hz)
		for x := 0; x < s.cfg.W; x++ {
			im.SetRGB(y, x,
				skyTop[0]+(skyBot[0]-skyTop[0])*t,
				skyTop[1]+(skyBot[1]-skyTop[1])*t,
				skyTop[2]+(skyBot[2]-skyTop[2])*t)
		}
	}

	// Ground: roadside strips + asphalt centre.
	roadL := s.cfg.W / 5
	roadR := s.cfg.W - s.cfg.W/5
	var side [3]float64
	switch {
	case d.Weather == Snowy:
		side = [3]float64{0.82, 0.83, 0.85} // snow cover
	case d.Time == Night:
		side = [3]float64{0.05, 0.07, 0.05}
	case d.Time == Dawn:
		side = [3]float64{0.35, 0.30, 0.22}
	default:
		side = [3]float64{0.25, 0.45, 0.22} // grass
	}
	asphalt := 0.30
	if d.Weather == Rainy {
		asphalt = 0.22 // wet, darker
	}
	if d.Time == Night {
		asphalt = 0.10
	}
	for y := hz; y < s.cfg.H; y++ {
		depth := float64(y-hz) / float64(s.cfg.H-hz)
		// Road widens toward the viewer.
		l := roadL - int(depth*float64(roadL)*0.7)
		r := roadR + int(depth*float64(roadL)*0.7)
		for x := 0; x < s.cfg.W; x++ {
			if x >= l && x < r {
				a := asphalt * (0.8 + 0.4*depth)
				im.SetRGB(y, x, a, a, a*1.05)
			} else {
				im.SetRGB(y, x, side[0]*(0.7+0.5*depth), side[1]*(0.7+0.5*depth), side[2]*(0.7+0.5*depth))
			}
		}
	}
	// Lane markings: dashed centre line.
	cx := s.cfg.W / 2
	for y := hz + 1; y < s.cfg.H; y += 2 {
		if (y/2)%2 == 0 {
			lm := 0.85
			if d.Time == Night {
				lm = 0.4
			}
			im.SetRGB(y, cx, lm, lm, 0.6)
		}
	}
	// Location flavour: city buildings, residential trees, highway extra lane.
	switch d.Location {
	case City:
		for i := 0; i < 3; i++ {
			bw := 3 + rng.Intn(3)
			bh := 4 + rng.Intn(5)
			bx := rng.Intn(s.cfg.W - bw)
			c := 0.2 + rng.Range(0, 0.15)
			if d.Time == Night {
				c *= 0.4
			}
			im.FillRect(hz-bh, bx, hz, bx+bw, c, c, c*1.1)
		}
	case Residential:
		for i := 0; i < 2; i++ {
			tx := rng.Intn(s.cfg.W)
			g := 0.35
			if d.Time == Night {
				g = 0.08
			}
			im.DrawDisc(hz-2, tx, 2.2, 0.10, g, 0.10)
		}
	case Highway:
		for y := hz + 1; y < s.cfg.H; y += 3 {
			lm := 0.7
			if d.Time == Night {
				lm = 0.35
			}
			im.SetRGB(y, cx-s.cfg.W/8, lm, lm, lm)
			im.SetRGB(y, cx+s.cfg.W/8, lm, lm, lm)
		}
	}
}

// placeObjects draws the frame's objects and returns their ground truth.
func (s *SceneGen) placeObjects(im *Image, d Domain, hz int) []Box {
	rng := s.rng
	var boxes []Box

	// Cars: 1–4 per frame.
	nCars := 1 + rng.Intn(4)
	for i := 0; i < nCars; i++ {
		boxes = append(boxes, s.drawCar(im, d, hz, false))
	}
	// Trucks are rarer (paper Table 6 relies on this imbalance).
	if rng.Float64() < 0.35 {
		boxes = append(boxes, s.drawCar(im, d, hz, true))
	}
	// Pedestrians.
	nP := 0
	if rng.Float64() < 0.5 {
		nP = 1 + rng.Intn(2)
	}
	for i := 0; i < nP; i++ {
		boxes = append(boxes, s.drawPerson(im, d, hz))
	}
	// Traffic light.
	if rng.Float64() < 0.45 {
		boxes = append(boxes, s.drawTrafficLight(im, d, hz))
	}
	// Sign.
	if rng.Float64() < 0.45 {
		boxes = append(boxes, s.drawSign(im, d, hz))
	}
	return boxes
}

// perspective returns the object scale for a ground-contact row y.
func (s *SceneGen) perspective(y, hz int) float64 {
	depth := float64(y-hz) / float64(s.cfg.H-hz)
	return 0.45 + 0.85*depth
}

func (s *SceneGen) drawCar(im *Image, d Domain, hz int, truck bool) Box {
	rng := s.rng
	gy := hz + 2 + rng.Intn(s.cfg.H-hz-3) // ground-contact row
	sc := s.perspective(gy, hz)
	var w, h float64
	if truck {
		w, h = 9*sc, 6.5*sc
	} else {
		w, h = 7*sc, 3.8*sc
	}
	if w < 3 {
		w = 3
	}
	if h < 2 {
		h = 2
	}
	x := float64(2 + rng.Intn(s.cfg.W-int(w)-4))
	y := float64(gy) - h

	// Body colour.
	var r, g, b float64
	if truck {
		// Trucks: boxy, desaturated container colours.
		base := []float64{0.75, 0.72, 0.68}
		j := rng.Range(-0.1, 0.1)
		r, g, b = base[0]+j, base[1]+j, base[2]+j
	} else {
		hues := [][3]float64{
			{0.75, 0.15, 0.15}, {0.15, 0.2, 0.7}, {0.8, 0.8, 0.82},
			{0.15, 0.15, 0.17}, {0.65, 0.65, 0.15}, {0.4, 0.42, 0.45},
		}
		hsel := hues[rng.Intn(len(hues))]
		r, g, b = hsel[0], hsel[1], hsel[2]
	}
	x0, y0 := int(x), int(y)
	x1, y1 := int(x+w), int(y+h)
	im.FillRect(y0, x0, y1, x1, r, g, b)
	// Windows: darker band on the upper part.
	wy1 := y0 + (y1-y0)/3
	im.FillRect(y0, x0+1, wy1+1, x1-1, 0.1, 0.12, 0.16)
	// Wheels.
	im.FillRect(y1-1, x0, y1, x0+2, 0.03, 0.03, 0.03)
	im.FillRect(y1-1, x1-2, y1, x1, 0.03, 0.03, 0.03)
	if truck {
		// Cab: small front box.
		im.FillRect(y1-(y1-y0)/3, x1-2, y1, x1+1, r*0.8, g*0.8, b*0.8)
	}
	cls := ClassCar
	if truck {
		cls = ClassTruck
	}
	return Box{Class: cls, X: x, Y: y, W: w, H: h}
}

func (s *SceneGen) drawPerson(im *Image, d Domain, hz int) Box {
	rng := s.rng
	gy := hz + 2 + rng.Intn(s.cfg.H-hz-3)
	sc := s.perspective(gy, hz)
	w := math.Max(1.6, 2*sc)
	h := math.Max(3, 5.5*sc)
	// Pedestrians stay near the road edges.
	var x float64
	if rng.Float64() < 0.5 {
		x = float64(1 + rng.Intn(s.cfg.W/5))
	} else {
		x = float64(s.cfg.W - s.cfg.W/5 + rng.Intn(s.cfg.W/5-int(w)-1))
	}
	y := float64(gy) - h
	x0, y0, x1, y1 := int(x), int(y), int(x+w), int(y+h)
	// Torso.
	shirt := [][3]float64{{0.7, 0.2, 0.2}, {0.2, 0.3, 0.7}, {0.2, 0.55, 0.25}, {0.75, 0.6, 0.2}}
	c := shirt[rng.Intn(len(shirt))]
	im.FillRect(y0+1, x0, y1, x1, c[0], c[1], c[2])
	// Head.
	im.FillRect(y0, x0, y0+1, x1, 0.85, 0.7, 0.55)
	// Legs darker.
	im.FillRect(y0+(y1-y0)*2/3, x0, y1, x1, 0.15, 0.15, 0.2)
	return Box{Class: ClassPerson, X: x, Y: y, W: w, H: h}
}

func (s *SceneGen) drawTrafficLight(im *Image, d Domain, hz int) Box {
	rng := s.rng
	w, h := 2.0, 4.0
	x := float64(3 + rng.Intn(s.cfg.W-8))
	y := float64(1 + rng.Intn(hz-int(h)-1))
	x0, y0, x1, y1 := int(x), int(y), int(x+w), int(y+h)
	im.FillRect(y0, x0, y1, x1, 0.12, 0.12, 0.1)
	// The lit bulb is emissive and re-painted after domain transforms.
	return Box{Class: ClassTrafficLight, X: x, Y: y, W: w, H: h}
}

func (s *SceneGen) drawSign(im *Image, d Domain, hz int) Box {
	rng := s.rng
	w, h := 3.0, 3.0
	// Roadside posts.
	var x float64
	if rng.Float64() < 0.5 {
		x = float64(1 + rng.Intn(s.cfg.W/6))
	} else {
		x = float64(s.cfg.W - s.cfg.W/6 + rng.Intn(s.cfg.W/6-int(w)))
	}
	y := float64(hz - int(h) - rng.Intn(4))
	x0, y0, x1, y1 := int(x), int(y), int(x+w), int(y+h)
	colors := [][3]float64{{0.9, 0.15, 0.1}, {0.95, 0.8, 0.1}, {0.1, 0.4, 0.85}}
	c := colors[rng.Intn(len(colors))]
	im.FillRect(y0, x0, y1, x1, c[0], c[1], c[2])
	// White border row for sign texture.
	im.FillRect(y0+(y1-y0)/2, x0, y0+(y1-y0)/2+1, x1, 0.9, 0.9, 0.9)
	return Box{Class: ClassSign, X: x, Y: y, W: w, H: h}
}

// applyDomain applies the global appearance transforms that make domains
// separable in latent space, then repaints emissive elements.
func (s *SceneGen) applyDomain(im *Image, d Domain, boxes []Box) {
	rng := s.rng
	switch d.Time {
	case Night:
		im.Scale(0.28)
	case Dawn:
		// Warm tint, slightly dim.
		hw := im.H * im.W
		for p := 0; p < hw; p++ {
			im.Pix[p] = clamp01(im.Pix[p]*0.95 + 0.06)
			im.Pix[2*hw+p] = clamp01(im.Pix[2*hw+p] * 0.85)
		}
		im.Scale(0.9)
	}
	switch d.Weather {
	case Foggy:
		im.BlendToward(0.72, 0.55)
	case Overcast:
		im.BlendToward(0.55, 0.22)
		im.Desaturate(0.35)
	case Rainy:
		im.Scale(0.82)
		im.Desaturate(0.45)
		im.BlendToward(0.45, 0.15)
		// Diagonal rain streaks.
		n := 10 + rng.Intn(8)
		for i := 0; i < n; i++ {
			x := rng.Intn(im.W)
			y := rng.Intn(im.H)
			l := 2 + rng.Intn(3)
			for k := 0; k < l; k++ {
				v := im.At(0, y+k, x-k)
				im.SetRGB(y+k, x-k, v+0.25, v+0.26, v+0.3)
			}
		}
	case Snowy:
		im.BlendToward(0.82, 0.20)
		// Snow speckle.
		n := 25 + rng.Intn(15)
		for i := 0; i < n; i++ {
			im.SetRGB(rng.Intn(im.H), rng.Intn(im.W), 0.95, 0.95, 0.97)
		}
	}

	// Emissive elements drawn after global transforms.
	for _, b := range boxes {
		switch b.Class {
		case ClassTrafficLight:
			// Lit bulb: red or green.
			bx := int(b.X + b.W/2)
			by := int(b.Y + 1)
			if rng.Float64() < 0.5 {
				im.SetRGB(by, bx, 0.95, 0.1, 0.1)
			} else {
				im.SetRGB(by+1, bx, 0.1, 0.9, 0.2)
			}
		case ClassCar, ClassTruck:
			if d.Time == Night {
				// Tail-lights.
				y := int(b.Y + b.H - 2)
				im.SetRGB(y, int(b.X)+1, 0.9, 0.12, 0.08)
				im.SetRGB(y, int(b.X+b.W)-2, 0.9, 0.12, 0.08)
			}
		}
	}
	if d.Time == Night {
		// Street lights along the horizon.
		n := 2 + rng.Intn(3)
		for i := 0; i < n; i++ {
			im.SetRGB(s.horizon()-1-rng.Intn(3), rng.Intn(im.W), 0.9, 0.85, 0.6)
		}
	}
	// Sensor noise: slightly stronger at night (high ISO).
	sigma := 0.015
	if d.Time == Night {
		sigma = 0.03
	}
	for i := range im.Pix {
		im.Pix[i] = clamp01(im.Pix[i] + rng.Norm()*sigma)
	}
}
