package outlier

import (
	"math"
	"sort"

	"odin/internal/gan"
	"odin/internal/tensor"
)

// LatentKNN scores queries by their mean distance to the k nearest training
// points in a learned latent space. Wrapping different projectors yields the
// Table 1 columns: AE latent, AAE latent, and DA-GAN (DG) latent — the last
// being the paper's proposed distance metric. Distances in the compact
// latent manifold dodge the curse of dimensionality that defeats raw-pixel
// metrics (§4.2).
type LatentKNN struct {
	K int
	// Train is called by Fit to construct and train the projector.
	Train func(data [][]float64) gan.Projector

	proj    gan.Projector
	latents [][]float64
}

// NewLatentKNN builds a latent-space k-NN detector over the projector
// produced by train.
func NewLatentKNN(k int, train func(data [][]float64) gan.Projector) *LatentKNN {
	if k <= 0 {
		k = 5
	}
	return &LatentKNN{K: k, Train: train}
}

// Fit trains the projector and caches the training latents, batching the
// projection when the projector supports it.
func (l *LatentKNN) Fit(train [][]float64) {
	l.proj = l.Train(train)
	l.latents = gan.ProjectAll(l.proj, train)
}

// Score returns the mean latent distance to the k nearest training points.
func (l *LatentKNN) Score(x []float64) float64 {
	z := l.proj.Project(x)
	ds := make([]float64, len(l.latents))
	for i, t := range l.latents {
		ds[i] = tensor.L2(z, t)
	}
	sort.Float64s(ds)
	k := l.K
	if k > len(ds) {
		k = len(ds)
	}
	var s float64
	for i := 0; i < k; i++ {
		s += ds[i]
	}
	if k == 0 {
		return 0
	}
	return s / float64(k)
}

// Projector exposes the trained projector (nil before Fit).
func (l *LatentKNN) Projector() gan.Projector { return l.proj }

var _ Detector = (*LatentKNN)(nil)

// NewAEDetector returns the "AE" Table 1 detector: k-NN in a plain
// autoencoder's latent space.
func NewAEDetector(cfg gan.Config, epochs, batch, k int) *LatentKNN {
	return NewLatentKNN(k, func(data [][]float64) gan.Projector {
		ae := gan.NewAutoencoder(cfg)
		ae.Fit(data, epochs, batch)
		return ae
	})
}

// NewAAEDetector returns the "AAE" Table 1 detector: k-NN in an adversarial
// autoencoder's latent space.
func NewAAEDetector(cfg gan.Config, epochs, batch, k int) *LatentKNN {
	return NewLatentKNN(k, func(data [][]float64) gan.Projector {
		aae := gan.NewAAE(cfg)
		aae.Fit(data, epochs, batch)
		return aae
	})
}

// DAGANDetector is the "DG" Table 1 detector — the paper's proposed
// metric. It combines the three drift signals the DA-GAN provides (§4.3):
// latent-space k-NN distance, the latent discriminator's realism judgement
// (outliers encode away from the smooth prior), and reconstruction error.
// Each component is standardised against its training distribution and the
// standardised scores are summed.
type DAGANDetector struct {
	Cfg    gan.Config
	Epochs int
	Batch  int
	K      int

	dg      *gan.DAGAN
	latents [][]float64
	stats   [3][2]float64 // per-component (mean, std) on training data
}

// NewDAGANDetector builds the composite DA-GAN detector.
func NewDAGANDetector(cfg gan.Config, epochs, batch, k int) *DAGANDetector {
	if k <= 0 {
		k = 5
	}
	return &DAGANDetector{Cfg: cfg, Epochs: epochs, Batch: batch, K: k}
}

// Fit trains the DA-GAN and calibrates the component statistics.
func (d *DAGANDetector) Fit(train [][]float64) {
	d.dg = gan.NewDAGAN(d.Cfg)
	d.dg.Fit(train, d.Epochs, d.Batch)
	d.latents = d.dg.ProjectBatch(train)
	comps := make([][]float64, 3)
	for _, x := range train {
		c := d.components(x)
		for j := 0; j < 3; j++ {
			comps[j] = append(comps[j], c[j])
		}
	}
	for j := 0; j < 3; j++ {
		d.stats[j][0] = tensor.Mean(comps[j])
		d.stats[j][1] = stddev(comps[j])
	}
}

// components returns the raw drift signals for x.
func (d *DAGANDetector) components(x []float64) [3]float64 {
	z := d.dg.Project(x)
	ds := make([]float64, len(d.latents))
	for i, t := range d.latents {
		ds[i] = tensor.L2(z, t)
	}
	sort.Float64s(ds)
	k := d.K
	if k > len(ds) {
		k = len(ds)
	}
	var knn float64
	for i := 0; i < k; i++ {
		knn += ds[i]
	}
	if k > 0 {
		knn /= float64(k)
	}
	return [3]float64{knn, 1 - d.dg.LatentRealism(x), d.dg.ReconError(x)}
}

// Score returns the summed standardised drift signals.
func (d *DAGANDetector) Score(x []float64) float64 {
	c := d.components(x)
	var s float64
	for j := 0; j < 3; j++ {
		sd := d.stats[j][1]
		if sd < 1e-9 {
			sd = 1e-9
		}
		s += (c[j] - d.stats[j][0]) / sd
	}
	return s
}

// Projector exposes the trained DA-GAN (nil before Fit).
func (d *DAGANDetector) Projector() gan.Projector { return d.dg }

func stddev(v []float64) float64 {
	return math.Sqrt(tensor.Variance(v))
}

var _ Detector = (*DAGANDetector)(nil)

// NewPCADetectorKNN returns a k-NN detector over PCA coordinates (used in
// ablations; Table 1's PCA column uses reconstruction error via PCA.Score).
func NewPCADetectorKNN(components, k int) *LatentKNN {
	return NewLatentKNN(k, func(data [][]float64) gan.Projector {
		p := NewPCA(components)
		p.Fit(data)
		return p
	})
}
