package outlier

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"odin/internal/gan"
	"odin/internal/synth"
	"odin/internal/tensor"
)

// blob samples n points around centre with given sigma.
func blob(rng *tensor.RNG, centre []float64, sigma float64, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		p := make([]float64, len(centre))
		for j, c := range centre {
			p[j] = c + sigma*rng.Norm()
		}
		out[i] = p
	}
	return out
}

func TestLOFSeparatesBlobs(t *testing.T) {
	rng := tensor.NewRNG(1)
	train := blob(rng, []float64{0, 0}, 0.5, 150)
	lof := NewLOF(10)
	lof.Fit(train)

	inScore := lof.Score([]float64{0.1, -0.2})
	outScore := lof.Score([]float64{8, 8})
	if outScore < inScore*2 {
		t.Fatalf("LOF failed: inlier=%v outlier=%v", inScore, outScore)
	}
	if inScore > 2 {
		t.Fatalf("inlier LOF should be near 1, got %v", inScore)
	}
}

func TestLOFDefaultK(t *testing.T) {
	l := NewLOF(0)
	if l.K != 10 {
		t.Fatalf("default K=%d", l.K)
	}
}

func TestPCARecoversSubspace(t *testing.T) {
	// Data on a 2-D plane inside 10-D space; PCA(2) must reconstruct it
	// nearly perfectly, and off-plane points must score high.
	rng := tensor.NewRNG(2)
	mk := func(a, b float64) []float64 {
		v := make([]float64, 10)
		for j := 0; j < 10; j++ {
			v[j] = a*float64(j%3) + b*float64((j+1)%4)
		}
		return v
	}
	var train [][]float64
	for i := 0; i < 200; i++ {
		train = append(train, mk(rng.Norm(), rng.Norm()))
	}
	p := NewPCA(2)
	p.Fit(train)
	in := p.Score(mk(0.5, -1))
	off := mk(0.5, -1)
	off[7] += 5 // leave the plane
	out := p.Score(off)
	if in > 1e-6 {
		t.Fatalf("on-plane reconstruction error should be ~0, got %v", in)
	}
	if out < 0.1 {
		t.Fatalf("off-plane point should have high error, got %v", out)
	}
}

func TestPCAComponentsOrthonormal(t *testing.T) {
	rng := tensor.NewRNG(3)
	train := blob(rng, make([]float64, 8), 1, 100)
	p := NewPCA(4)
	p.Fit(train)
	comps := p.Components()
	if len(comps) != 4 {
		t.Fatalf("got %d components", len(comps))
	}
	for i := range comps {
		for j := range comps {
			dot := tensor.Dot(comps[i], comps[j])
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-6 {
				t.Fatalf("components %d,%d not orthonormal: %v", i, j, dot)
			}
		}
	}
}

func TestPCAProjectDim(t *testing.T) {
	rng := tensor.NewRNG(4)
	train := blob(rng, make([]float64, 6), 1, 50)
	p := NewPCA(3)
	p.Fit(train)
	z := p.Project(train[0])
	if len(z) != 3 || p.LatentDim() != 3 {
		t.Fatalf("projection dim %d", len(z))
	}
}

func TestOtsuSeparatesTwoModes(t *testing.T) {
	rng := tensor.NewRNG(5)
	var scores []float64
	for i := 0; i < 300; i++ {
		scores = append(scores, 1+0.2*rng.Norm())
	}
	for i := 0; i < 100; i++ {
		scores = append(scores, 5+0.4*rng.Norm())
	}
	thr := OtsuThreshold(scores)
	// The threshold must separate the two modes: (nearly) all of mode one
	// below it, all of mode two above it.
	labels := make([]bool, len(scores))
	for i := 300; i < len(scores); i++ {
		labels[i] = true
	}
	if f1 := Evaluate(scores, labels, thr).F1(); f1 < 0.97 {
		t.Fatalf("Otsu threshold %v separates modes with F1=%v", thr, f1)
	}
}

func TestOtsuDegenerateInputs(t *testing.T) {
	if OtsuThreshold(nil) != 0 {
		t.Fatal("empty scores")
	}
	if OtsuThreshold([]float64{3, 3, 3}) != 3 {
		t.Fatal("constant scores should return the constant")
	}
}

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, TN: 85, FN: 5}
	if math.Abs(c.Precision()-0.8) > 1e-12 {
		t.Fatalf("precision %v", c.Precision())
	}
	if math.Abs(c.Recall()-8.0/13) > 1e-12 {
		t.Fatalf("recall %v", c.Recall())
	}
	if c.F1() <= 0 || c.F1() > 1 {
		t.Fatalf("f1 %v", c.F1())
	}
	if math.Abs(c.Accuracy()-0.93) > 1e-12 {
		t.Fatalf("accuracy %v", c.Accuracy())
	}
	empty := Confusion{}
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Fatal("degenerate precision/recall should be 1")
	}
	if empty.Accuracy() != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestEvaluateCounts(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.2, 0.8}
	labels := []bool{false, true, true, false}
	c := Evaluate(scores, labels, 0.5)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion %+v", c)
	}
}

func TestF1ScoreNoOutliers(t *testing.T) {
	rng := tensor.NewRNG(6)
	scores := make([]float64, 200)
	labels := make([]bool, 200)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	f1 := F1Score(scores, labels)
	if f1 < 0.95 || f1 > 1 {
		t.Fatalf("0%%-outlier score should be ≈0.99, got %v", f1)
	}
}

func TestF1ScoreWellSeparated(t *testing.T) {
	var scores []float64
	var labels []bool
	for i := 0; i < 90; i++ {
		scores = append(scores, 0.1)
		labels = append(labels, false)
	}
	for i := 0; i < 10; i++ {
		scores = append(scores, 0.9)
		labels = append(labels, true)
	}
	if f1 := F1Score(scores, labels); f1 < 0.99 {
		t.Fatalf("separated modes should give F1≈1, got %v", f1)
	}
}

func TestBestF1UpperBoundsOtsu(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 50
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			scores[i] = rng.Float64()
			labels[i] = rng.Float64() < 0.3
		}
		hasOutlier := false
		for _, l := range labels {
			hasOutlier = hasOutlier || l
		}
		if !hasOutlier {
			return true
		}
		best, _ := BestF1(scores, labels)
		otsu := F1Score(scores, labels)
		return best >= otsu-1e-9
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	if Quantile(v, 0) != 1 || Quantile(v, 1) != 5 {
		t.Fatal("quantile extremes")
	}
	if Quantile(v, 0.5) != 3 {
		t.Fatalf("median %v", Quantile(v, 0.5))
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
	// Input must not be mutated.
	u := []float64{3, 1, 2}
	Quantile(u, 0.5)
	if u[0] != 3 {
		t.Fatal("quantile mutated input")
	}
}

func TestDRAEDetectsDigitOutliers(t *testing.T) {
	train := digitRows(10, []int{0, 1, 2}, 60)
	cfg := gan.Config{InputDim: len(train[0]), Latent: 10, Hidden: []int{64, 24}, LR: 0.002, Seed: 3}
	d := NewDRAE(cfg, 10, 32)
	d.Fit(train)

	inliers := digitRows(11, []int{0, 1, 2}, 25)
	outliers := digitRows(12, []int{4, 7}, 25)
	var scores []float64
	var labels []bool
	for _, x := range inliers {
		scores = append(scores, d.Score(x))
		labels = append(labels, false)
	}
	for _, x := range outliers {
		scores = append(scores, d.Score(x))
		labels = append(labels, true)
	}
	best, _ := BestF1(scores, labels)
	if best < 0.6 {
		t.Fatalf("DRAE best F1 too low: %v", best)
	}
}

func TestLatentKNNWithDAGAN(t *testing.T) {
	train := digitRows(13, []int{0, 1, 2}, 60)
	cfg := gan.Config{InputDim: len(train[0]), Latent: 10, Hidden: []int{64, 24}, LR: 0.002, Seed: 4}
	det := NewDAGANDetector(cfg, 15, 32, 5)
	det.Fit(train)
	if det.Projector() == nil {
		t.Fatal("projector should exist after Fit")
	}

	inliers := digitRows(14, []int{0, 1, 2}, 25)
	outliers := digitRows(15, []int{8, 9}, 25)
	var scores []float64
	var labels []bool
	for _, x := range inliers {
		scores = append(scores, det.Score(x))
		labels = append(labels, false)
	}
	for _, x := range outliers {
		scores = append(scores, det.Score(x))
		labels = append(labels, true)
	}
	best, _ := BestF1(scores, labels)
	if best < 0.7 {
		t.Fatalf("DA-GAN latent detector best F1 too low: %v", best)
	}
}

func TestLatentKNNScoreOrdering(t *testing.T) {
	// A detector over an identity-like projection (PCA with full rank) must
	// score far points higher.
	rng := tensor.NewRNG(16)
	train := blob(rng, []float64{0, 0, 0}, 0.3, 80)
	det := NewPCADetectorKNN(3, 5)
	det.Fit(train)
	near := det.Score([]float64{0.1, 0, 0})
	far := det.Score([]float64{5, 5, 5})
	if far <= near {
		t.Fatalf("far point must score higher: near=%v far=%v", near, far)
	}
}

// digitRows renders digits and returns flattened pixel rows (shared helper).
func digitRows(seed uint64, classes []int, n int) [][]float64 {
	ds := synth.DigitDataset(seed, classes, n)
	rows := make([][]float64, len(ds))
	for i, li := range ds {
		rows[i] = li.Image.Flat()
	}
	return rows
}

func TestScoresSortStable(t *testing.T) {
	// Guard against BestF1 mutating its inputs.
	scores := []float64{0.5, 0.1, 0.9}
	labels := []bool{false, false, true}
	BestF1(scores, labels)
	if !sort.Float64sAreSorted([]float64{scores[1], scores[0], scores[2]}) {
		t.Fatal("BestF1 mutated scores")
	}
}
