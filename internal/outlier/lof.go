package outlier

import (
	"math"
	"sort"

	"odin/internal/tensor"
)

// LOF is the Local Outlier Factor detector of Breunig et al. (SIGMOD 2000),
// the paper's first Table 1 baseline. It estimates the local density of
// each training point; a query whose local density is much lower than that
// of its neighbours receives a score well above 1.
type LOF struct {
	K int

	train []([]float64)
	kdist []float64 // k-distance of each training point
	lrd   []float64 // local reachability density of each training point
}

// NewLOF returns a LOF detector with the given neighbourhood size.
func NewLOF(k int) *LOF {
	if k <= 0 {
		k = 10
	}
	return &LOF{K: k}
}

// neighbor pairs an index with a distance.
type neighbor struct {
	idx int
	d   float64
}

// nearestTo returns the k training points nearest to x, excluding index
// skip (used to exclude self during fitting).
func (l *LOF) nearestTo(x []float64, skip, k int) []neighbor {
	ns := make([]neighbor, 0, len(l.train))
	for i, p := range l.train {
		if i == skip {
			continue
		}
		ns = append(ns, neighbor{i, tensor.L2(x, p)})
	}
	sort.Slice(ns, func(a, b int) bool { return ns[a].d < ns[b].d })
	if k > len(ns) {
		k = len(ns)
	}
	return ns[:k]
}

// Fit computes every training point's k-distance and local reachability
// density.
func (l *LOF) Fit(train [][]float64) {
	l.train = train
	n := len(train)
	l.kdist = make([]float64, n)
	l.lrd = make([]float64, n)
	neighbors := make([][]neighbor, n)
	for i, p := range train {
		ns := l.nearestTo(p, i, l.K)
		neighbors[i] = ns
		if len(ns) > 0 {
			l.kdist[i] = ns[len(ns)-1].d
		}
	}
	for i := range train {
		var sum float64
		for _, nb := range neighbors[i] {
			sum += math.Max(l.kdist[nb.idx], nb.d) // reachability distance
		}
		if sum == 0 {
			l.lrd[i] = math.Inf(1)
		} else {
			l.lrd[i] = float64(len(neighbors[i])) / sum
		}
	}
}

// Score returns the LOF value of a query point: ≈1 for inliers, larger for
// outliers.
func (l *LOF) Score(x []float64) float64 {
	ns := l.nearestTo(x, -1, l.K)
	if len(ns) == 0 {
		return 0
	}
	var reachSum float64
	for _, nb := range ns {
		reachSum += math.Max(l.kdist[nb.idx], nb.d)
	}
	if reachSum == 0 {
		return 0 // x coincides with a dense training region
	}
	lrdX := float64(len(ns)) / reachSum
	var ratioSum float64
	for _, nb := range ns {
		lr := l.lrd[nb.idx]
		if math.IsInf(lr, 1) {
			lr = 1e12
		}
		ratioSum += lr / lrdX
	}
	return ratioSum / float64(len(ns))
}

var _ Detector = (*LOF)(nil)
