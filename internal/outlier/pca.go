package outlier

import (
	"math"

	"odin/internal/tensor"
)

// PCA is the canonical linear dimensionality-reduction baseline of Table 1:
// it fits the top-k principal components of the training data by power
// iteration with deflation and scores queries by reconstruction error. PCA
// ignores the spatial structure of images, which is why the paper shows it
// degrading fastest as the outlier fraction grows.
type PCA struct {
	K     int
	Iters int

	mean       []float64
	components [][]float64 // K orthonormal direction vectors
}

// NewPCA returns a PCA detector keeping k components.
func NewPCA(k int) *PCA {
	if k <= 0 {
		k = 8
	}
	return &PCA{K: k, Iters: 50}
}

// Fit computes the mean and top-K principal directions of train.
func (p *PCA) Fit(train [][]float64) {
	n := len(train)
	if n == 0 {
		return
	}
	dim := len(train[0])
	p.mean = tensor.Centroid(train)

	// Centered copies.
	centered := make([][]float64, n)
	for i, x := range train {
		c := make([]float64, dim)
		for j, v := range x {
			c[j] = v - p.mean[j]
		}
		centered[i] = c
	}

	rng := tensor.NewRNG(12345)
	p.components = nil
	k := p.K
	if k > dim {
		k = dim
	}
	for comp := 0; comp < k; comp++ {
		v := rng.NormVec(dim)
		normalize(v)
		for it := 0; it < p.Iters; it++ {
			// w = Cv computed implicitly as Σ (xᵀv) x / n.
			w := make([]float64, dim)
			for _, x := range centered {
				a := tensor.Dot(x, v)
				tensor.AXPY(a, x, w)
			}
			// Deflate against found components.
			for _, c := range p.components {
				a := tensor.Dot(w, c)
				tensor.AXPY(-a, c, w)
			}
			if norm(w) < 1e-12 {
				break
			}
			normalize(w)
			v = w
		}
		p.components = append(p.components, v)
	}
}

// Score returns the squared reconstruction error after projecting onto the
// fitted components, normalised by dimensionality.
func (p *PCA) Score(x []float64) float64 {
	if p.mean == nil {
		return 0
	}
	dim := len(x)
	c := make([]float64, dim)
	for j, v := range x {
		c[j] = v - p.mean[j]
	}
	recon := make([]float64, dim)
	for _, comp := range p.components {
		a := tensor.Dot(c, comp)
		tensor.AXPY(a, comp, recon)
	}
	var s float64
	for j := range c {
		d := c[j] - recon[j]
		s += d * d
	}
	return s / float64(dim)
}

// Components returns the fitted principal directions.
func (p *PCA) Components() [][]float64 { return p.components }

// Project maps x to its K-dimensional principal-component coordinates.
func (p *PCA) Project(x []float64) []float64 {
	c := make([]float64, len(x))
	for j, v := range x {
		c[j] = v - p.mean[j]
	}
	out := make([]float64, len(p.components))
	for i, comp := range p.components {
		out[i] = tensor.Dot(c, comp)
	}
	return out
}

// LatentDim returns the number of components.
func (p *PCA) LatentDim() int { return len(p.components) }

func norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func normalize(v []float64) {
	n := norm(v)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

var _ Detector = (*PCA)(nil)
