// Package outlier implements the drift/outlier-detection baselines the
// paper compares DA-GAN against in Table 1 — LOF (Breunig et al.), DRAE
// (Xia et al.), PCA reconstruction error — plus latent-space k-NN detectors
// over any gan.Projector (AE, AAE, DA-GAN), unsupervised Otsu thresholding
// and F1 evaluation.
package outlier

import (
	"math"
	"sort"
)

// Detector is an unsupervised outlier scorer: Fit consumes in-distribution
// (or contaminated) training data; Score returns a value that is higher for
// points less likely to come from the training distribution.
type Detector interface {
	Fit(train [][]float64)
	Score(x []float64) float64
}

// OtsuThreshold picks the score threshold that maximises between-class
// variance of the score histogram — the unsupervised two-mode separation
// that DRAE's discriminative reconstruction objective converges to.
func OtsuThreshold(scores []float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range scores {
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
	}
	if hi <= lo {
		return lo
	}
	const bins = 64
	hist := make([]float64, bins)
	for _, s := range scores {
		b := int((s - lo) / (hi - lo) * bins)
		if b >= bins {
			b = bins - 1
		}
		hist[b]++
	}
	total := float64(len(scores))
	var sumAll float64
	for i, c := range hist {
		sumAll += float64(i) * c
	}
	var wB, sumB, bestVar float64
	best := 0
	for i := 0; i < bins; i++ {
		wB += hist[i]
		if wB == 0 {
			continue
		}
		wF := total - wB
		if wF == 0 {
			break
		}
		sumB += float64(i) * hist[i]
		mB := sumB / wB
		mF := (sumAll - sumB) / wF
		v := wB * wF * (mB - mF) * (mB - mF)
		if v > bestVar {
			bestVar = v
			best = i
		}
	}
	return lo + (float64(best)+0.5)/bins*(hi-lo)
}

// Confusion counts binary classification outcomes for the outlier class.
type Confusion struct {
	TP, FP, TN, FN int
}

// Precision of the outlier class (1 when no positives were predicted).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall of the outlier class (1 when there were no outliers).
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy is overall classification accuracy.
func (c Confusion) Accuracy() float64 {
	n := c.TP + c.FP + c.TN + c.FN
	if n == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(n)
}

// Evaluate thresholds scores and compares against ground truth (true =
// outlier).
func Evaluate(scores []float64, isOutlier []bool, thr float64) Confusion {
	var c Confusion
	for i, s := range scores {
		pred := s > thr
		switch {
		case pred && isOutlier[i]:
			c.TP++
		case pred && !isOutlier[i]:
			c.FP++
		case !pred && isOutlier[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// F1Score runs the full unsupervised protocol: Otsu threshold on the score
// distribution, then outlier-class F1. When the test set contains no
// outliers (the paper's 0% row), it returns the fraction of inliers
// correctly retained below threshold — the analogous "nothing falsely
// flagged" quality measure — using a high quantile of the scores as the
// operating threshold, since a two-mode threshold does not exist.
func F1Score(scores []float64, isOutlier []bool) float64 {
	any := false
	for _, o := range isOutlier {
		if o {
			any = true
			break
		}
	}
	if !any {
		thr := Quantile(scores, 0.99)
		kept := 0
		for _, s := range scores {
			if s <= thr {
				kept++
			}
		}
		return float64(kept) / float64(len(scores))
	}
	thr := OtsuThreshold(scores)
	return Evaluate(scores, isOutlier, thr).F1()
}

// BestF1 sweeps all score thresholds and returns the maximum achievable F1
// (the oracle upper bound, used in tests and diagnostics).
func BestF1(scores []float64, isOutlier []bool) (float64, float64) {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	best, bestThr := 0.0, 0.0
	for k := 0; k < len(idx); k++ {
		thr := scores[idx[k]]
		c := Evaluate(scores, isOutlier, thr)
		if f := c.F1(); f > best {
			best = f
			bestThr = thr
		}
	}
	return best, bestThr
}

// Quantile returns the q-quantile (0..1) of values.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}
