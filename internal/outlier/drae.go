package outlier

import (
	"odin/internal/gan"
)

// DRAE is the discriminative reconstruction autoencoder baseline (Xia et
// al., ICCV 2015): an autoencoder whose reconstruction error is used as the
// outlier score, with an unsupervised two-mode threshold (here Otsu, which
// maximises the same between-mode separation DRAE's alternating objective
// optimises). The paper's critique — that reconstruction error on the raw
// output space inherits the AE's latent holes — is what Table 1 measures.
type DRAE struct {
	Cfg    gan.Config
	Epochs int
	Batch  int

	ae *gan.Autoencoder
}

// NewDRAE returns a DRAE detector with the given autoencoder architecture.
func NewDRAE(cfg gan.Config, epochs, batch int) *DRAE {
	return &DRAE{Cfg: cfg, Epochs: epochs, Batch: batch}
}

// Fit trains the underlying autoencoder.
func (d *DRAE) Fit(train [][]float64) {
	d.ae = gan.NewAutoencoder(d.Cfg)
	d.ae.Fit(train, d.Epochs, d.Batch)
}

// Score returns the reconstruction error of x.
func (d *DRAE) Score(x []float64) float64 {
	return d.ae.ReconError(x)
}

var _ Detector = (*DRAE)(nil)
