package band

// TrackerState is a value snapshot of a Tracker for checkpointing. All
// fields are exported so the struct gob-encodes; the slices are deep copies.
type TrackerState struct {
	Counts   []float64
	N        int
	Delta    float64
	Band     Band
	LastKL   float64
	Stable   int
	PrevBand Band
}

// State snapshots the tracker.
func (t *Tracker) State() TrackerState {
	counts := make([]float64, len(t.Hist.Counts))
	copy(counts, t.Hist.Counts)
	return TrackerState{
		Counts:   counts,
		N:        t.Hist.N,
		Delta:    t.Delta,
		Band:     t.band,
		LastKL:   t.lastKL,
		Stable:   t.stable,
		PrevBand: t.prevBand,
	}
}

// TrackerFromState rebuilds a tracker that behaves exactly like the one the
// snapshot was taken from: same histogram, band, KL signal and stability run.
func TrackerFromState(st TrackerState) *Tracker {
	t := &Tracker{
		Hist:     &Histogram{Counts: make([]float64, len(st.Counts)), N: st.N},
		Delta:    st.Delta,
		band:     st.Band,
		lastKL:   st.LastKL,
		stable:   st.Stable,
		prevBand: st.PrevBand,
	}
	copy(t.Hist.Counts, st.Counts)
	return t
}
