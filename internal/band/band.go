// Package band implements the ∆-band machinery of paper §4.1: histograms
// of normalised centroid distances, high-density bands (Equation 1), the KL
// divergence drift signal (Equation 2) and an online stability tracker that
// decides when a temporary cluster has stabilised into a new concept.
package band

import (
	"fmt"
	"math"
)

// Histogram is a fixed-bin histogram over normalised distances in [0, 1].
type Histogram struct {
	Counts []float64
	N      int
}

// NewHistogram returns an empty histogram with the given number of bins.
func NewHistogram(bins int) *Histogram {
	if bins <= 0 {
		panic(fmt.Sprintf("band: invalid bin count %d", bins))
	}
	return &Histogram{Counts: make([]float64, bins)}
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.Counts) }

// binOf maps a distance in [0,1] to its bin, clamping out-of-range values.
func (h *Histogram) binOf(d float64) int {
	b := int(d * float64(len(h.Counts)))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	return b
}

// Add records one distance observation.
func (h *Histogram) Add(d float64) {
	h.Counts[h.binOf(d)]++
	h.N++
}

// Remove deletes one previously added observation (used by the sliding-
// window temporary cluster).
func (h *Histogram) Remove(d float64) {
	b := h.binOf(d)
	if h.Counts[b] > 0 {
		h.Counts[b]--
		h.N--
	}
}

// Reset clears all counts.
func (h *Histogram) Reset() {
	for i := range h.Counts {
		h.Counts[i] = 0
	}
	h.N = 0
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	out := NewHistogram(len(h.Counts))
	copy(out.Counts, h.Counts)
	out.N = h.N
	return out
}

// Probs returns the Laplace-smoothed probability mass function, the PA/PB
// of Equation 2. Smoothing keeps the KL divergence finite when bins are
// empty.
func (h *Histogram) Probs() []float64 {
	out := make([]float64, len(h.Counts))
	denom := float64(h.N) + float64(len(h.Counts))*smoothing
	for i, c := range h.Counts {
		out[i] = (c + smoothing) / denom
	}
	return out
}

const smoothing = 0.5

// KL returns the Kullback–Leibler divergence D(p‖q) = Σ p log(p/q) between
// two probability vectors (Equation 2 with the paper's sign convention).
func KL(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("band: KL length mismatch")
	}
	var s float64
	for i, pi := range p {
		if pi <= 0 {
			continue
		}
		qi := q[i]
		if qi <= 0 {
			qi = 1e-12
		}
		s += pi * math.Log(pi/qi)
	}
	if s < 0 {
		// Numerical noise; KL is non-negative by Gibbs' inequality.
		return 0
	}
	return s
}

// Band is a high-density ∆-band [Lo, Hi] over normalised distance holding
// fraction Delta of a cluster's points (Equation 1).
type Band struct {
	Lo, Hi float64
	Delta  float64
}

// Contains reports whether a normalised distance lies inside the band.
func (b Band) Contains(d float64) bool { return d >= b.Lo && d <= b.Hi }

// Width returns Hi − Lo.
func (b Band) Width() float64 { return b.Hi - b.Lo }

// String renders the band bounds.
func (b Band) String() string { return fmt.Sprintf("[%.3f, %.3f]@%.2f", b.Lo, b.Hi, b.Delta) }

// Compute derives the ∆-band from a distance histogram: the band is seeded
// at the distribution peak and greedily expanded toward whichever neighbour
// bin holds more mass — inwards toward the centroid and outwards toward the
// cluster edge — until it holds at least fraction delta of the points
// (∫ f∆ = ∆, Equation 1).
func Compute(h *Histogram, delta float64) Band {
	if h.N == 0 {
		return Band{Lo: 0, Hi: 1, Delta: delta}
	}
	bins := len(h.Counts)
	// Peak bin.
	peak := 0
	for i, c := range h.Counts {
		if c > h.Counts[peak] {
			peak = i
		}
	}
	lo, hi := peak, peak
	mass := h.Counts[peak]
	target := delta * float64(h.N)
	for mass < target && (lo > 0 || hi < bins-1) {
		var left, right float64 = -1, -1
		if lo > 0 {
			left = h.Counts[lo-1]
		}
		if hi < bins-1 {
			right = h.Counts[hi+1]
		}
		if left >= right && lo > 0 {
			lo--
			mass += left
		} else {
			hi++
			mass += right
		}
	}
	w := 1 / float64(bins)
	return Band{Lo: float64(lo) * w, Hi: float64(hi+1) * w, Delta: delta}
}

// Tracker maintains a cluster's live distance distribution, its ∆-band and
// the KL-divergence stability signal. Observe implements the prior/
// posterior comparison of §4.1: PA is the distribution before a point is
// added, PB after.
type Tracker struct {
	Hist  *Histogram
	Delta float64

	band     Band
	lastKL   float64
	stable   int // consecutive observations with KL < eps and steady band
	prevBand Band
}

// NewTracker returns a tracker with the given histogram resolution and ∆.
func NewTracker(bins int, delta float64) *Tracker {
	return &Tracker{Hist: NewHistogram(bins), Delta: delta, band: Band{Lo: 0, Hi: 1, Delta: delta}}
}

// Observe records a distance, recomputes the band, and returns the KL
// divergence between the prior and posterior distributions.
func (t *Tracker) Observe(d float64) float64 {
	prior := t.Hist.Probs()
	t.Hist.Add(d)
	posterior := t.Hist.Probs()
	t.lastKL = KL(prior, posterior)
	t.prevBand = t.band
	t.band = Compute(t.Hist, t.Delta)
	return t.lastKL
}

// Forget removes a distance from the distribution (sliding-window use).
func (t *Tracker) Forget(d float64) {
	t.Hist.Remove(d)
	t.band = Compute(t.Hist, t.Delta)
}

// Band returns the current ∆-band.
func (t *Tracker) Band() Band { return t.band }

// LastKL returns the KL divergence of the most recent observation.
func (t *Tracker) LastKL() float64 { return t.lastKL }

// UpdateStability advances the consecutive-stable counter: an observation
// is stable when its KL divergence is below eps and the band bounds moved
// less than tol. It returns the current consecutive count.
func (t *Tracker) UpdateStability(eps, tol float64) int {
	if t.lastKL < eps &&
		math.Abs(t.band.Lo-t.prevBand.Lo) <= tol &&
		math.Abs(t.band.Hi-t.prevBand.Hi) <= tol {
		t.stable++
	} else {
		t.stable = 0
	}
	return t.stable
}

// ResetStability clears the consecutive-stable counter.
func (t *Tracker) ResetStability() { t.stable = 0 }

// StableRun returns the current consecutive-stable count.
func (t *Tracker) StableRun() int { return t.stable }

// Rebuild recomputes the histogram from scratch over a set of distances.
func (t *Tracker) Rebuild(dists []float64) {
	t.Hist.Reset()
	for _, d := range dists {
		t.Hist.Add(d)
	}
	t.band = Compute(t.Hist, t.Delta)
}
