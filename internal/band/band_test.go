package band

import (
	"math"
	"testing"
	"testing/quick"

	"odin/internal/tensor"
)

func TestHistogramAddRemove(t *testing.T) {
	h := NewHistogram(10)
	h.Add(0.05)
	h.Add(0.15)
	h.Add(0.15)
	if h.N != 3 || h.Counts[0] != 1 || h.Counts[1] != 2 {
		t.Fatalf("histogram state: %+v", h)
	}
	h.Remove(0.15)
	if h.N != 2 || h.Counts[1] != 1 {
		t.Fatalf("after remove: %+v", h)
	}
	// Removing from an empty bin is a no-op.
	h.Remove(0.95)
	if h.N != 2 {
		t.Fatal("remove from empty bin changed N")
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(4)
	h.Add(-0.5)
	h.Add(1.5)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Fatalf("clamping failed: %+v", h.Counts)
	}
}

func TestHistogramPanicsOnBadBins(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(0)
}

func TestProbsSumToOne(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		h := NewHistogram(1 + rng.Intn(20))
		n := rng.Intn(100)
		for i := 0; i < n; i++ {
			h.Add(rng.Float64())
		}
		p := h.Probs()
		var s float64
		for _, v := range p {
			if v <= 0 {
				return false // smoothing must keep everything positive
			}
			s += v
		}
		return math.Abs(s-1) < 1e-9
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestKLProperties(t *testing.T) {
	p := []float64{0.5, 0.3, 0.2}
	if KL(p, p) > 1e-12 {
		t.Fatalf("KL(p,p)=%v, want 0", KL(p, p))
	}
	q := []float64{0.2, 0.3, 0.5}
	if KL(p, q) <= 0 {
		t.Fatal("KL of different distributions must be positive")
	}
}

func TestKLNonNegativeProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 2 + rng.Intn(10)
		mk := func() []float64 {
			v := make([]float64, n)
			var s float64
			for i := range v {
				v[i] = rng.Float64() + 0.01
				s += v[i]
			}
			for i := range v {
				v[i] /= s
			}
			return v
		}
		return KL(mk(), mk()) >= 0
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestKLLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KL([]float64{1}, []float64{0.5, 0.5})
}

func TestComputeBandCapturesDelta(t *testing.T) {
	// Gaussian-ish distances centred at 0.5.
	rng := tensor.NewRNG(5)
	h := NewHistogram(40)
	var dists []float64
	for i := 0; i < 5000; i++ {
		d := 0.5 + 0.1*rng.Norm()
		h.Add(d)
		dists = append(dists, d)
	}
	for _, delta := range []float64{0.5, 0.75, 0.9} {
		b := Compute(h, delta)
		// Count actual fraction inside the band.
		in := 0
		for _, d := range dists {
			if b.Contains(d) {
				in++
			}
		}
		frac := float64(in) / float64(len(dists))
		if frac < delta-0.03 {
			t.Fatalf("band %v holds %.3f < delta %.2f", b, frac, delta)
		}
		// The band should be tight: not the whole [0,1] range.
		if b.Width() > 0.8 {
			t.Fatalf("band too wide: %v", b)
		}
	}
}

func TestComputeBandMonotoneInDelta(t *testing.T) {
	rng := tensor.NewRNG(6)
	h := NewHistogram(32)
	for i := 0; i < 2000; i++ {
		h.Add(0.4 + 0.15*rng.Norm())
	}
	b1 := Compute(h, 0.5)
	b2 := Compute(h, 0.9)
	if b2.Width() < b1.Width() {
		t.Fatalf("larger delta must give wider band: %v vs %v", b1, b2)
	}
}

func TestComputeBandEmptyHistogram(t *testing.T) {
	b := Compute(NewHistogram(10), 0.75)
	if b.Lo != 0 || b.Hi != 1 {
		t.Fatalf("empty histogram should give full band, got %v", b)
	}
}

func TestComputeBandCentresOnPeak(t *testing.T) {
	h := NewHistogram(10)
	// All mass in bin 7 ([0.7, 0.8)).
	for i := 0; i < 100; i++ {
		h.Add(0.75)
	}
	b := Compute(h, 0.75)
	if !b.Contains(0.75) {
		t.Fatalf("band %v must contain the peak", b)
	}
	if b.Width() > 0.11 {
		t.Fatalf("single-bin mass should give a one-bin band: %v", b)
	}
}

func TestBandContains(t *testing.T) {
	b := Band{Lo: 0.2, Hi: 0.6}
	if !b.Contains(0.2) || !b.Contains(0.6) || !b.Contains(0.4) {
		t.Fatal("band bounds should be inclusive")
	}
	if b.Contains(0.19) || b.Contains(0.61) {
		t.Fatal("band must exclude points outside bounds")
	}
}

func TestTrackerKLConvergesOnStationaryStream(t *testing.T) {
	// A stationary distance stream must drive KL → 0 (the paper's
	// stability criterion DKL → 0 when PB = PA).
	rng := tensor.NewRNG(9)
	tr := NewTracker(24, 0.75)
	var last float64
	for i := 0; i < 3000; i++ {
		last = tr.Observe(0.5 + 0.08*rng.Norm())
	}
	if last > 1e-4 {
		t.Fatalf("KL should converge to ~0 on a stationary stream, got %v", last)
	}
}

func TestTrackerStabilityCounter(t *testing.T) {
	rng := tensor.NewRNG(10)
	tr := NewTracker(24, 0.75)
	// Feed a stationary stream; stability must accumulate.
	run := 0
	for i := 0; i < 1500; i++ {
		tr.Observe(0.5 + 0.05*rng.Norm())
		run = tr.UpdateStability(1e-3, 0.05)
	}
	if run < 10 {
		t.Fatalf("stationary stream should yield a long stable run, got %d", run)
	}
	// A distribution shift must reset the counter.
	for i := 0; i < 50; i++ {
		tr.Observe(0.95)
	}
	tr.Observe(0.95)
	if tr.UpdateStability(1e-9, 0.0001) != 0 && tr.StableRun() > run {
		t.Fatal("distribution shift should reset stability")
	}
	tr.ResetStability()
	if tr.StableRun() != 0 {
		t.Fatal("ResetStability failed")
	}
}

func TestTrackerForget(t *testing.T) {
	tr := NewTracker(10, 0.5)
	tr.Observe(0.3)
	tr.Observe(0.3)
	tr.Forget(0.3)
	if tr.Hist.N != 1 {
		t.Fatalf("forget failed: N=%d", tr.Hist.N)
	}
}

func TestTrackerRebuild(t *testing.T) {
	tr := NewTracker(10, 0.5)
	tr.Observe(0.9)
	tr.Rebuild([]float64{0.1, 0.1, 0.15})
	if tr.Hist.N != 3 {
		t.Fatalf("rebuild N=%d", tr.Hist.N)
	}
	if !tr.Band().Contains(0.1) {
		t.Fatalf("rebuilt band %v should contain the new mass", tr.Band())
	}
}

func TestHistogramCloneIndependent(t *testing.T) {
	h := NewHistogram(5)
	h.Add(0.5)
	c := h.Clone()
	c.Add(0.5)
	if h.N != 1 || c.N != 2 {
		t.Fatal("clone shares state")
	}
}
