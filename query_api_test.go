package odin

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// oracle returns ground-truth boxes as perfect detections — a cheap,
// stateless stand-in model for query-path tests.
func oracle(f *Frame) []Detection {
	out := make([]Detection, len(f.Boxes))
	for i, b := range f.Boxes {
		out[i] = Detection{Box: b, Score: 0.99}
	}
	return out
}

func TestQueryBuilderSQL(t *testing.T) {
	q := Select(Count).
		From("cam-0").
		UsingFilter("truck_filter").
		UsingModel("odin").
		Where(Class("truck"))
	want := "SELECT COUNT(detections) FROM (SELECT * FROM cam-0 USING FILTER truck_filter) USING MODEL odin WHERE class='truck'"
	if got := q.SQL(); got != want {
		t.Fatalf("SQL render:\n got  %s\n want %s", got, want)
	}
	// Plain query, no filter level.
	q2 := Select(Detections).UsingModel("yolo").Where(ClassID(1))
	if got, want := q2.SQL(), "SELECT detections FROM stream USING MODEL yolo WHERE class='1'"; got != want {
		t.Fatalf("SQL render:\n got  %s\n want %s", got, want)
	}
}

func TestQueryBuilderConstructionErrors(t *testing.T) {
	srv := sharedServer(t)
	cases := []struct {
		name string
		q    *Query
	}{
		{"bad projection", Select(Projection(99))},
		{"empty model", Select(Count).UsingModel("")},
		{"empty filter", Select(Count).UsingFilter("")},
		{"empty source", Select(Count).From("")},
		{"unparseable source", Select(Count).From("cam 0").UsingModel("odin")},
		{"unparseable model", Select(Count).UsingModel("my model")},
		{"unparseable filter", Select(Count).UsingModel("odin").UsingFilter("f'")},
		{"keyword source", Select(Count).From("filter").UsingModel("odin")},
		{"keyword model", Select(Count).UsingModel("count")},
		{"conflicting models", Select(Count).UsingModel("odin").UsingModel("yolo")},
		{"bad min score", Select(Count).UsingModel("odin").WithMinScore(1.5)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := srv.Prepare(c.q); err == nil {
				t.Fatal("Prepare should surface the construction error")
			}
		})
	}
}

// TestPrepareTypedErrors: unknown references fail at Prepare with the
// exported sentinels.
func TestPrepareTypedErrors(t *testing.T) {
	srv := sharedServer(t)
	if _, err := srv.Prepare(Select(Count).UsingModel("ghost")); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown model: %v", err)
	}
	if _, err := srv.Prepare(Select(Count).UsingModel("odin").UsingFilter("ghost")); !errors.Is(err, ErrUnknownFilter) {
		t.Fatalf("unknown filter: %v", err)
	}
	if _, err := srv.Prepare(Select(Count).UsingModel("odin").Where(Class("dragon"))); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("unknown class: %v", err)
	}
	if _, err := srv.PrepareSQL("SELECT COUNT(detections) FROM s USING MODEL odin WHERE weather='rain'"); !errors.Is(err, ErrBadPredicate) {
		t.Fatalf("bad predicate: %v", err)
	}
	if _, err := srv.PrepareSQL("SELECT COUNT(detections) FROM (SELECT detections FROM s USING MODEL odin) USING MODEL yolo"); !errors.Is(err, ErrMultipleModels) {
		t.Fatalf("multiple models: %v", err)
	}
}

// TestBuilderSQLRoundTrip: every statement the builder renders parses and
// compiles back to the same plan — including hyphenated stream names.
func TestBuilderSQLRoundTrip(t *testing.T) {
	srv := sharedServer(t)
	srv.RegisterFilter("rt_filter", func(*Frame) bool { return true })
	q := Select(Count).
		From("cam-0").
		UsingFilter("rt_filter").
		UsingModel("odin").
		Where(Class("car"))
	pq, err := srv.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := srv.PrepareSQL(pq.SQL())
	if err != nil {
		t.Fatalf("rendered SQL does not re-parse: %v\n  sql: %s", err, pq.SQL())
	}
	if replayed.Explain() != pq.Explain() {
		t.Fatalf("replayed plan diverged:\n got  %s\n want %s", replayed.Explain(), pq.Explain())
	}
}

// TestPreBootstrapCustomModelQuery pins the pre-bootstrap fix: queries
// referencing only custom registered models prepare and run before
// Bootstrap, while the built-in bindings still report ErrNotBootstrapped.
func TestPreBootstrapCustomModelQuery(t *testing.T) {
	srv, err := New(fastServerOptions(31)...)
	if err != nil {
		t.Fatal(err)
	}
	srv.RegisterModel("oracle", oracle)
	frames := srv.GenerateFrames(DayData, 6)

	// Custom model: runnable before Bootstrap, via SQL and via builder.
	res, err := srv.Query(context.Background(),
		"SELECT COUNT(detections) FROM s USING MODEL oracle WHERE class='car'", frames)
	if err != nil {
		t.Fatalf("pre-bootstrap custom-model query: %v", err)
	}
	want := 0
	for _, f := range frames {
		for _, b := range f.Boxes {
			if b.Class == ClassCar {
				want++
			}
		}
	}
	if res.Count != want {
		t.Fatalf("count %d, want %d", res.Count, want)
	}
	pq, err := srv.Prepare(Select(Count).UsingModel("oracle").Where(Class("car")))
	if err != nil {
		t.Fatalf("pre-bootstrap Prepare: %v", err)
	}
	if res2, err := pq.Execute(context.Background(), frames); err != nil || res2.Count != want {
		t.Fatalf("prepared execute: %v (count %d, want %d)", err, res2.Count, want)
	}

	// Built-ins still gate on Bootstrap, with the lifecycle error.
	for _, model := range []string{"odin", "yolo"} {
		if _, err := srv.Prepare(Select(Count).UsingModel(model)); !errors.Is(err, ErrNotBootstrapped) {
			t.Fatalf("pre-bootstrap %s: %v", model, err)
		}
	}
	// A genuinely unknown model is not misreported as un-bootstrapped.
	if _, err := srv.Prepare(Select(Count).UsingModel("ghost")); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown model pre-bootstrap: %v", err)
	}
}

// TestPreparedQueryMatchesServerQuery: the prepared path and the one-shot
// SQL path agree, and a prepared query survives repeated reuse.
func TestPreparedQueryMatchesServerQuery(t *testing.T) {
	srv := sharedServer(t)
	frames := srv.GenerateFrames(DayData, 8)
	sql := "SELECT COUNT(detections) FROM stream USING MODEL yolo WHERE class='car'"
	want, err := srv.Query(context.Background(), sql, frames)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := srv.PrepareSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := pq.Execute(context.Background(), frames)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != want.Count || got.ModelFrames != want.ModelFrames {
			t.Fatalf("reuse %d: %+v, want %+v", i, got, want)
		}
	}
	if pq.SQL() != sql {
		t.Fatalf("SQL round trip: %q", pq.SQL())
	}
	if pq.Explain() == "" {
		t.Fatal("Explain should render the plan")
	}
}

// TestPreparedMinScoreOverride: the builder's WithMinScore freezes a
// per-plan threshold.
func TestPreparedMinScoreOverride(t *testing.T) {
	srv := sharedServer(t)
	srv.RegisterModel("half_conf", func(f *Frame) []Detection {
		out := oracle(f)
		for i := range out {
			out[i].Score = 0.5
		}
		return out
	})
	frames := srv.GenerateFrames(DayData, 5)
	loose, err := srv.Prepare(Select(Count).UsingModel("half_conf").Where(Class("car")).WithMinScore(0.2))
	if err != nil {
		t.Fatal(err)
	}
	strict, err := srv.Prepare(Select(Count).UsingModel("half_conf").Where(Class("car")).WithMinScore(0.9))
	if err != nil {
		t.Fatal(err)
	}
	lres, err := loose.Execute(context.Background(), frames)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := strict.Execute(context.Background(), frames)
	if err != nil {
		t.Fatal(err)
	}
	if lres.Count == 0 || sres.Count != 0 {
		t.Fatalf("min-score override broken: loose %d, strict %d", lres.Count, sres.Count)
	}
}

// subscribeRun feeds frames through a Run session with a standing
// subscription attached and collects every window, draining the main
// result channel concurrently.
func subscribeRun(t *testing.T, srv *Server, workers int, pq *PreparedQuery, frames []*Frame, windowSize int) []WindowResult {
	t.Helper()
	st, err := srv.OpenStream(context.Background(), StreamOptions{Name: "sub", Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	wins, err := st.Subscribe(context.Background(), pq, WindowOptions{Size: windowSize})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *Frame)
	go func() {
		defer close(in)
		for _, f := range frames {
			in <- f
		}
	}()
	out := st.Run(context.Background(), in)
	drained := make(chan int)
	go func() {
		n := 0
		for range out {
			n++
		}
		drained <- n
	}()
	var collected []WindowResult
	for wr := range wins {
		collected = append(collected, wr)
	}
	if n := <-drained; n != len(frames) {
		t.Fatalf("run delivered %d/%d results", n, len(frames))
	}
	return collected
}

// TestSubscribeMatchesOfflineQuery is the acceptance-criteria test: a
// continuous Subscribe run over N frames produces window aggregates
// bit-identical to an offline Server.Query over the same frames, at 1, 4
// and 8 workers (run under -race in CI). The final window is partial,
// which also pins the end-of-session flush.
func TestSubscribeMatchesOfflineQuery(t *testing.T) {
	const seed, perPhase, windowSize = 17, 20, 16
	sql := "SELECT COUNT(detections) FROM stream USING MODEL odin WHERE class='car'"

	// Offline reference on a fresh, identically seeded server.
	ref, err := New(fastServerOptions(seed)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Bootstrap(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	frames := driftStream(ref, perPhase)
	want, err := ref.Query(context.Background(), sql, frames)
	if err != nil {
		t.Fatal(err)
	}
	if want.Count == 0 {
		t.Fatal("offline reference counted nothing; the comparison would be vacuous")
	}

	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			srv, err := New(fastServerOptions(seed)...)
			if err != nil {
				t.Fatal(err)
			}
			if err := srv.Bootstrap(context.Background(), nil); err != nil {
				t.Fatal(err)
			}
			frames := driftStream(srv, perPhase)
			pq, err := srv.PrepareSQL(sql)
			if err != nil {
				t.Fatal(err)
			}
			wins := subscribeRun(t, srv, workers, pq, frames, windowSize)

			// Window bookkeeping: contiguous seq ranges covering all frames.
			seq := 0
			var perFrame []int
			total, modelFrames := 0, 0
			for k, wr := range wins {
				if wr.Window != k {
					t.Fatalf("window %d reported index %d", k, wr.Window)
				}
				if wr.StartSeq != seq {
					t.Fatalf("window %d starts at %d, want %d", k, wr.StartSeq, seq)
				}
				n := wr.EndSeq - wr.StartSeq + 1
				if n != windowSize && k != len(wins)-1 {
					t.Fatalf("non-final window %d has %d frames", k, n)
				}
				if wr.FramesScanned != n || len(wr.PerFrame) != n {
					t.Fatalf("window %d stats wrong: scanned %d, per-frame %d, want %d",
						k, wr.FramesScanned, len(wr.PerFrame), n)
				}
				perFrame = append(perFrame, wr.PerFrame...)
				total += wr.Count
				modelFrames += wr.ModelFrames
				seq = wr.EndSeq + 1
			}
			if seq != len(frames) {
				t.Fatalf("windows covered %d/%d frames", seq, len(frames))
			}

			// Bit-identical aggregates vs the offline query.
			if total != want.Count || modelFrames != want.ModelFrames {
				t.Fatalf("continuous count %d (model frames %d), offline %d (%d)",
					total, modelFrames, want.Count, want.ModelFrames)
			}
			for i := range want.PerFrame {
				if perFrame[i] != want.PerFrame[i] {
					t.Fatalf("frame %d: continuous %d, offline %d", i, perFrame[i], want.PerFrame[i])
				}
			}
		})
	}
}

// TestSubscribeCustomModelWithFilter: a subscription bound to a stateless
// custom model executes its own filter→model pipeline per window and
// matches the offline query exactly, including data-reduction stats.
func TestSubscribeCustomModelWithFilter(t *testing.T) {
	srv := sharedServer(t)
	srv.RegisterModel("sub_oracle", oracle)
	srv.RegisterFilter("has_car", func(f *Frame) bool {
		for _, b := range f.Boxes {
			if b.Class == ClassCar {
				return true
			}
		}
		return false
	})
	frames := srv.GenerateFrames(FullData, 30)
	q := Select(Count).UsingFilter("has_car").UsingModel("sub_oracle").Where(Class("car"))
	want, err := srv.Query(context.Background(), q.SQL(), frames)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := srv.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	wins := subscribeRun(t, srv, 2, pq, frames, 10)
	if len(wins) != 3 {
		t.Fatalf("got %d windows, want 3", len(wins))
	}
	total, filtered := 0, 0
	var perFrame []int
	for _, wr := range wins {
		total += wr.Count
		filtered += wr.FramesFiltered
		perFrame = append(perFrame, wr.PerFrame...)
	}
	if total != want.Count || filtered != want.FramesFiltered {
		t.Fatalf("continuous %d/%d filtered, offline %d/%d",
			total, filtered, want.Count, want.FramesFiltered)
	}
	for i := range want.PerFrame {
		if perFrame[i] != want.PerFrame[i] {
			t.Fatalf("frame %d: continuous %d, offline %d", i, perFrame[i], want.PerFrame[i])
		}
	}
}

// TestSubscribeSharedWindowManySubscriptions: several standing queries on
// one stream each see every window; the shared pipeline runs detection
// once (drift state advances exactly len(frames), not once per
// subscription).
func TestSubscribeSharedWindowManySubscriptions(t *testing.T) {
	srv, err := New(fastServerOptions(37)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Bootstrap(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	frames := srv.GenerateFrames(DayData, 24)
	st, err := srv.OpenStream(context.Background(), StreamOptions{Name: "multi", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	classes := []string{"car", "truck"}
	chans := make([]<-chan WindowResult, len(classes))
	for i, cls := range classes {
		pq, err := srv.Prepare(Select(Count).UsingModel("odin").Where(Class(cls)))
		if err != nil {
			t.Fatal(err)
		}
		if chans[i], err = st.Subscribe(context.Background(), pq, WindowOptions{Size: 8, Buffer: 8}); err != nil {
			t.Fatal(err)
		}
	}
	in := make(chan *Frame)
	go func() {
		defer close(in)
		for _, f := range frames {
			in <- f
		}
	}()
	for range st.Run(context.Background(), in) {
	}
	for i, ch := range chans {
		n := 0
		for range ch {
			n++
		}
		if n != 3 {
			t.Fatalf("subscription %d got %d windows, want 3", i, n)
		}
	}
	if got := srv.Stats().Frames; got != len(frames) {
		t.Fatalf("pipeline advanced %d frames, want %d (detection must run once per window)",
			got, len(frames))
	}
}

// TestSubscribeErrors: foreign prepared queries, nil queries and closed
// streams are rejected; closing a stream with no active Run closes
// dangling subscription channels.
func TestSubscribeErrors(t *testing.T) {
	srv := sharedServer(t)
	other, err := New(fastServerOptions(41)...)
	if err != nil {
		t.Fatal(err)
	}
	other.RegisterModel("oracle", oracle)
	foreign, err := other.Prepare(Select(Count).UsingModel("oracle"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := srv.OpenStream(context.Background(), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Subscribe(context.Background(), foreign, WindowOptions{}); !errors.Is(err, ErrForeignQuery) {
		t.Fatalf("foreign query: %v", err)
	}
	if _, err := st.Subscribe(context.Background(), nil, WindowOptions{}); err == nil {
		t.Fatal("nil prepared query should error")
	}
	pq, err := srv.Prepare(Select(Count).UsingModel("odin"))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := st.Subscribe(context.Background(), pq, WindowOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, ok := <-ch; ok {
		t.Fatal("Close with no active Run should close subscription channels")
	}
	if _, err := st.Subscribe(context.Background(), pq, WindowOptions{}); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("Subscribe on closed stream: %v", err)
	}
}

// TestSubscribeContextCancellation: a cancelled subscription context drops
// the subscription at the next window without disturbing the Run session.
func TestSubscribeContextCancellation(t *testing.T) {
	srv := sharedServer(t)
	st, err := srv.OpenStream(context.Background(), StreamOptions{Workers: 2, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	pq, err := srv.Prepare(Select(Count).UsingModel("odin"))
	if err != nil {
		t.Fatal(err)
	}
	subCtx, cancel := context.WithCancel(context.Background())
	wins, err := st.Subscribe(subCtx, pq, WindowOptions{Size: 4})
	if err != nil {
		t.Fatal(err)
	}
	cancel() // before any frame flows
	frames := srv.GenerateFrames(DayData, 8)
	in := make(chan *Frame)
	go func() {
		defer close(in)
		for _, f := range frames {
			in <- f
		}
	}()
	n := 0
	for range st.Run(context.Background(), in) {
		n++
	}
	if n != len(frames) {
		t.Fatalf("run delivered %d/%d", n, len(frames))
	}
	if _, ok := <-wins; ok {
		t.Fatal("cancelled subscription should emit nothing and close")
	}
}

// TestRunRejectsOverlappingSession: a second Run while one is active
// returns a closed channel and leaves the active session's subscriptions
// untouched.
func TestRunRejectsOverlappingSession(t *testing.T) {
	srv := sharedServer(t)
	st, err := srv.OpenStream(context.Background(), StreamOptions{Workers: 2, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	pq, err := srv.Prepare(Select(Count).UsingModel("odin"))
	if err != nil {
		t.Fatal(err)
	}
	wins, err := st.Subscribe(context.Background(), pq, WindowOptions{Size: 4})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *Frame)
	out := st.Run(context.Background(), in)
	in <- srv.GenerateFrames(DayData, 1)[0]
	if _, ok := <-out; !ok {
		t.Fatal("first session should be live")
	}

	// Second session: rejected via a closed channel; the first session's
	// subscription must survive.
	closedIn := make(chan *Frame)
	close(closedIn)
	if _, ok := <-st.Run(context.Background(), closedIn); ok {
		t.Fatal("overlapping Run should return a closed channel")
	}
	select {
	case _, ok := <-wins:
		if !ok {
			t.Fatal("overlapping Run must not close the active session's subscriptions")
		}
	default: // still open, no window complete yet — correct
	}

	// Finish the first session cleanly: its partial window flushes.
	for i := 0; i < 3; i++ {
		in <- srv.GenerateFrames(DayData, 1)[0]
	}
	close(in)
	for range out {
	}
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Fatalf("expected the flushed window, got %d", n)
	}
}

// TestRunErrorPathClosesSubscriptions: a Run that fails at start (closed
// server) closes the stream's subscription channels instead of leaving
// consumers ranging forever.
func TestRunErrorPathClosesSubscriptions(t *testing.T) {
	srv, err := New(fastServerOptions(53)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Bootstrap(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	st, err := srv.OpenStream(context.Background(), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pq, err := srv.Prepare(Select(Count).UsingModel("odin"))
	if err != nil {
		t.Fatal(err)
	}
	wins, err := st.Subscribe(context.Background(), pq, WindowOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, ok := <-st.Run(context.Background(), make(chan *Frame)); ok {
		t.Fatal("Run on a closed server should return a closed channel")
	}
	if _, ok := <-wins; ok {
		t.Fatal("failed Run should close subscription channels")
	}
}

// TestRegisterReservedModel: the built-in binding names cannot be
// shadowed by custom registrations — continuous queries rely on "odin"
// always meaning the drift pipeline.
func TestRegisterReservedModel(t *testing.T) {
	srv, err := New(fastServerOptions(47)...)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"odin", "yolo"} {
		if err := srv.RegisterModel(name, oracle); !errors.Is(err, ErrReservedModel) {
			t.Fatalf("RegisterModel(%q): %v", name, err)
		}
		if err := srv.RegisterBatchModel(name, func(fs []*Frame) [][]Detection {
			return make([][]Detection, len(fs))
		}); !errors.Is(err, ErrReservedModel) {
			t.Fatalf("RegisterBatchModel(%q): %v", name, err)
		}
	}
	if err := srv.RegisterModel("mine", oracle); err != nil {
		t.Fatalf("custom name rejected: %v", err)
	}
}

// TestSubscribeSurfacesModelError: a misbehaving custom batch model ends
// the subscription with an errored WindowResult, not a silent close.
func TestSubscribeSurfacesModelError(t *testing.T) {
	srv := sharedServer(t)
	if err := srv.RegisterBatchModel("broken", func(fs []*Frame) [][]Detection {
		return make([][]Detection, len(fs)+1) // wrong length: execution error
	}); err != nil {
		t.Fatal(err)
	}
	pq, err := srv.Prepare(Select(Count).UsingModel("broken"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := srv.OpenStream(context.Background(), StreamOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	wins, err := st.Subscribe(context.Background(), pq, WindowOptions{Size: 4})
	if err != nil {
		t.Fatal(err)
	}
	frames := srv.GenerateFrames(DayData, 8)
	in := make(chan *Frame)
	go func() {
		defer close(in)
		for _, f := range frames {
			in <- f
		}
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range st.Run(context.Background(), in) {
		}
	}()
	wr, ok := <-wins
	if !ok || wr.Err == nil {
		t.Fatalf("expected an errored window, got ok=%v err=%v", ok, wr.Err)
	}
	if _, ok := <-wins; ok {
		t.Fatal("errored window must be the final emission")
	}
	<-done
}

// TestPreparedExecuteAllocs pins the prepared hot path: re-executing a
// compiled COUNT plan performs no parse or plan work, so its allocation
// count stays at the fixed execution-state floor — far below the
// parse-per-call path.
func TestPreparedExecuteAllocs(t *testing.T) {
	srv := sharedServer(t)
	srv.RegisterModel("noop_alloc", func(*Frame) []Detection { return nil })
	frames := srv.GenerateFrames(DayData, 8)
	sql := "SELECT COUNT(detections) FROM stream USING MODEL noop_alloc WHERE class='car'"
	pq, err := srv.PrepareSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	prepared := testing.AllocsPerRun(50, func() {
		if _, err := pq.Execute(ctx, frames); err != nil {
			t.Fatal(err)
		}
	})
	perCall := testing.AllocsPerRun(50, func() {
		if _, err := srv.Query(ctx, sql, frames); err != nil {
			t.Fatal(err)
		}
	})
	// Execution state only: result, live set, survivor gather (2), batch
	// detections, per-frame counts — no token stream, AST or plan.
	if prepared > 8 {
		t.Fatalf("prepared Execute allocates %v objects/run; parse/plan work is leaking into the hot path", prepared)
	}
	if perCall <= prepared {
		t.Fatalf("parse-per-call (%v allocs) should cost more than prepared (%v)", perCall, prepared)
	}
}

func BenchmarkPreparedQueryExecute(b *testing.B) {
	srv, err := New(fastServerOptions(43)...)
	if err != nil {
		b.Fatal(err)
	}
	srv.RegisterModel("bench_oracle", oracle)
	frames := srv.GenerateFrames(DayData, 32)
	pq, err := srv.PrepareSQL("SELECT COUNT(detections) FROM stream USING MODEL bench_oracle WHERE class='car'")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pq.Execute(ctx, frames); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryParsePerCall(b *testing.B) {
	srv, err := New(fastServerOptions(43)...)
	if err != nil {
		b.Fatal(err)
	}
	srv.RegisterModel("bench_oracle", oracle)
	frames := srv.GenerateFrames(DayData, 32)
	sql := "SELECT COUNT(detections) FROM stream USING MODEL bench_oracle WHERE class='car'"
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Query(ctx, sql, frames); err != nil {
			b.Fatal(err)
		}
	}
}
