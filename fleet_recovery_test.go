package odin

import (
	"context"
	"strings"
	"testing"
	"time"
)

// fleetServer builds a server wired to the shared registry under the
// fast-test substrate. Every fleet server uses the same seed so their
// DA-GAN latent spaces are comparable (the shared-substrate requirement of
// DESIGN.md §9).
func fleetServer(t *testing.T, reg *ModelRegistry, source string) *Server {
	t.Helper()
	srv, err := New(append(fastServerOptions(29),
		WithFleetRecovery(FleetRecovery{Registry: reg, Source: source}),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// driveStream processes frames sequentially and waits for every recovery
// to land or roll back.
func driveStream(t *testing.T, srv *Server, frames []*Frame) {
	t.Helper()
	st, err := srv.OpenStream(context.Background(), StreamOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if _, err := st.Process(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := srv.WaitRecoveries(ctx); err != nil {
		t.Fatalf("recoveries did not converge: %v", err)
	}
}

// TestFleetRegistryAdoptAcrossServers: two servers sharing a bootstrap
// substrate and a model registry; the second camera entering the regime the
// first already recovered from adopts its model instead of training.
func TestFleetRegistryAdoptAcrossServers(t *testing.T) {
	reg := NewModelRegistry(8)
	srvA := fleetServer(t, reg, "camA")
	srvB := fleetServer(t, reg, "camB")
	defer srvA.Close()
	defer srvB.Close()

	// Identical seed + identical boot frames → identical latent substrate.
	// Bootstrap on night only, so day is genuinely out of distribution.
	boot := srvA.GenerateFrames(NightData, 80)
	if err := srvA.Bootstrap(context.Background(), boot); err != nil {
		t.Fatal(err)
	}
	if err := srvB.Bootstrap(context.Background(), boot); err != nil {
		t.Fatal(err)
	}

	// Different day draws from one generator: same regime, different frames.
	dayA := srvA.GenerateFrames(DayData, 260)
	dayB := srvA.GenerateFrames(DayData, 260)

	driveStream(t, srvA, dayA)
	stA := srvA.TrainerStats()
	if stA.Trained == 0 || stA.Scratch == 0 {
		t.Fatalf("camera A should have scratch-trained its recovery: %+v", stA)
	}
	if rst := reg.Stats(); rst.Published == 0 {
		t.Fatalf("camera A's recovery was not published: %+v", rst)
	}

	driveStream(t, srvB, dayB)
	stB := srvB.TrainerStats()
	if stB.Scratch != 0 {
		t.Fatalf("camera B trained from scratch despite the registry: %+v", stB)
	}
	if stB.Adopted+stB.Coalesced == 0 {
		t.Fatalf("camera B neither adopted nor coalesced: %+v", stB)
	}
	if srvB.NumModels() == 0 || srvB.ModelGen() == 0 {
		t.Fatal("adoption did not install a model on camera B")
	}

	// Both servers see the same shared-registry stats.
	rst := srvB.RegistryStats()
	if rst != srvA.RegistryStats() {
		t.Fatal("shared registry must report identical stats on both servers")
	}
	if rst.AdoptHits+rst.Coalesced == 0 || rst.Misses == 0 {
		t.Fatalf("registry stats inconsistent with one build + one reuse: %+v", rst)
	}

	// Drift detection itself is unchanged by adoption: both cameras saw the
	// regime change.
	if srvA.Stats().DriftEvents == 0 || srvB.Stats().DriftEvents == 0 {
		t.Fatal("drift events missing")
	}
}

// TestFleetRecoveryPrivateRegistry: WithFleetRecovery without a shared
// registry still works — the server gets a private registry and recurring
// regimes adopt their own earlier recoveries.
func TestFleetRecoveryPrivateRegistry(t *testing.T) {
	srv, err := New(append(fastServerOptions(29),
		WithFleetRecovery(FleetRecovery{Capacity: 4, Source: "solo"}),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Bootstrap(context.Background(), srv.GenerateFrames(NightData, 80)); err != nil {
		t.Fatal(err)
	}
	driveStream(t, srv, srv.GenerateFrames(DayData, 260))

	st := srv.TrainerStats()
	if st.Trained == 0 {
		t.Fatalf("no recovery landed: %+v", st)
	}
	rst := srv.RegistryStats()
	if rst.Capacity != 4 || rst.Lookups == 0 || rst.Published == 0 {
		t.Fatalf("private registry not consulted: %+v", rst)
	}
}

// TestTrainerStatsFacade: Server.TrainerStats surfaces the async trainer's
// counters and is zero without one.
func TestTrainerStatsFacade(t *testing.T) {
	// No async trainer → zero stats, no panic.
	srv := sharedServer(t)
	if st := srv.TrainerStats(); st != (TrainerStats{}) {
		t.Fatalf("inline server reported trainer stats: %+v", st)
	}
	if rst := srv.RegistryStats(); rst != (RegistryStats{}) {
		t.Fatalf("non-fleet server reported registry stats: %+v", rst)
	}

	async, err := New(append(fastServerOptions(29), WithTrainAsync(true))...)
	if err != nil {
		t.Fatal(err)
	}
	defer async.Close()
	if err := async.Bootstrap(context.Background(), async.GenerateFrames(NightData, 80)); err != nil {
		t.Fatal(err)
	}
	driveStream(t, async, async.GenerateFrames(DayData, 260))
	st := async.TrainerStats()
	if st.Trained == 0 {
		t.Fatalf("async recovery not reflected in TrainerStats: %+v", st)
	}
	if st.Trained != st.Scratch+st.Warm+st.Adopted+st.Coalesced {
		t.Fatalf("trained breakdown does not sum: %+v", st)
	}
	// Without a registry every install is a scratch build.
	if st.Scratch != st.Trained {
		t.Fatalf("registry-less trainer reported non-scratch installs: %+v", st)
	}
}

// TestFleetRecoveryOptionValidation: bad adoption gates are rejected at
// construction.
func TestFleetRecoveryOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		fr   FleetRecovery
	}{
		{"adopt > 1", FleetRecovery{AdoptDistance: 1.5}},
		{"negative warm", FleetRecovery{WarmDistance: -0.1}},
		{"warm < adopt", FleetRecovery{AdoptDistance: 0.5, WarmDistance: 0.2}},
		{"negative capacity", FleetRecovery{Capacity: -1}},
	}
	for _, c := range cases {
		if _, err := New(WithFleetRecovery(c.fr)); err == nil {
			t.Errorf("%s: expected error", c.name)
		} else if !strings.Contains(err.Error(), "odin:") {
			t.Errorf("%s: error %q misses the odin: prefix", c.name, err)
		}
	}
	// WithFleetRecovery implies async training.
	srv, err := New(WithFleetRecovery(FleetRecovery{}))
	if err != nil {
		t.Fatal(err)
	}
	if !srv.cfg.trainAsync {
		t.Fatal("WithFleetRecovery must imply WithTrainAsync")
	}
}
