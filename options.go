package odin

import (
	"fmt"
	"runtime"

	"odin/internal/query"
)

// config is the resolved Server configuration. Options validate eagerly so
// New can reject a bad configuration before any training happens.
type config struct {
	seed            uint64
	bootstrapFrames int
	bootstrapEpochs int
	baselineEpochs  int
	maxModels       int
	driftRecovery   bool
	policy          Policy
	workers         int
	minScore        float64
}

func defaultConfig() config {
	return config{
		seed:            1,
		bootstrapFrames: 600,
		bootstrapEpochs: 8,
		baselineEpochs:  40,
		maxModels:       0,
		driftRecovery:   true,
		policy:          PolicyDeltaBM,
		workers:         runtime.GOMAXPROCS(0),
		minScore:        query.DefaultMinScore,
	}
}

// Option configures a Server at construction time.
type Option func(*config) error

// WithSeed sets the seed driving all randomness; equal seeds give
// identical servers. The seed must be non-zero.
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		if seed == 0 {
			return fmt.Errorf("odin: seed must be non-zero")
		}
		c.seed = seed
		return nil
	}
}

// WithBootstrapFrames sets the number of held-out frames used to train the
// DA-GAN projection and the baseline detector (default 600).
func WithBootstrapFrames(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("odin: bootstrap frames must be positive, got %d", n)
		}
		c.bootstrapFrames = n
		return nil
	}
}

// WithBootstrapEpochs sets the DA-GAN epoch budget (default 8).
func WithBootstrapEpochs(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("odin: bootstrap epochs must be positive, got %d", n)
		}
		c.bootstrapEpochs = n
		return nil
	}
}

// WithBaselineEpochs sets the baseline detector epoch budget (default 40).
func WithBaselineEpochs(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("odin: baseline epochs must be positive, got %d", n)
		}
		c.baselineEpochs = n
		return nil
	}
}

// WithMaxModels caps resident specialized models; 0 (the default) means
// unlimited. When the cap is exceeded the smallest cluster is evicted
// (§6.5 "Model Count Threshold").
func WithMaxModels(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("odin: max models must be non-negative, got %d", n)
		}
		c.maxModels = n
		return nil
	}
}

// WithDriftRecovery toggles the DETECTOR/SPECIALIZER/SELECTOR stack.
// Disabled, the heavyweight baseline serves every frame — the paper's
// "static system" comparison point.
func WithDriftRecovery(on bool) Option {
	return func(c *config) error {
		c.driftRecovery = on
		return nil
	}
}

// WithPolicy selects the SELECTOR policy (default PolicyDeltaBM).
func WithPolicy(p Policy) Option {
	return func(c *config) error {
		if _, err := p.corePolicy(); err != nil {
			return err
		}
		c.policy = p
		return nil
	}
}

// WithMinScore sets the server-wide detection-confidence floor query
// plans inherit (default 0.3). The floor is frozen into each plan at
// prepare time — concurrent queries never observe a mid-flight change —
// and a single query can override it with Query.WithMinScore.
func WithMinScore(s float64) Option {
	return func(c *config) error {
		if !(s >= 0 && s <= 1) { // written to also reject NaN
			return fmt.Errorf("odin: min score must be in [0,1], got %v", s)
		}
		c.minScore = s
		return nil
	}
}

// WithWorkers sets the server-wide default fan-out for sharded stream
// processing and query execution; StreamOptions.Workers overrides it per
// stream. 0 (the default) resolves to GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("odin: workers must be non-negative, got %d", n)
		}
		if n == 0 {
			n = runtime.GOMAXPROCS(0)
		}
		c.workers = n
		return nil
	}
}
