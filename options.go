package odin

import (
	"fmt"
	"runtime"
	"time"

	"odin/internal/qos"
	"odin/internal/query"
	"odin/internal/tensor"
)

// Backend selects the numeric compute backend the server's models run on.
type Backend int

const (
	// Float64 is the reference backend: float64 storage and kernels,
	// bit-identical to the original implementation. The default.
	Float64 Backend = iota
	// Float32 stores activations and frame batches in float32 and runs the
	// vectorized kernels (AVX2 where available): about half the memory
	// traffic and multiple-× matmul throughput, at float32 precision.
	// Master weights and gradient accumulation stay float64; see
	// DESIGN.md §8 for the determinism contract and tolerance audit.
	Float32
)

// dtype maps the public Backend to the internal tensor dtype.
func (b Backend) dtype() tensor.DType {
	if b == Float32 {
		return tensor.F32
	}
	return tensor.F64
}

// String names the backend as it appears in benchmark reports.
func (b Backend) String() string {
	if b == Float32 {
		return "float32"
	}
	return "float64"
}

// config is the resolved Server configuration. Options validate eagerly so
// New can reject a bad configuration before any training happens.
type config struct {
	seed            uint64
	bootstrapFrames int
	bootstrapEpochs int
	baselineEpochs  int
	maxModels       int
	driftRecovery   bool
	policy          Policy
	workers         int
	minScore        float64

	dispatcher       bool
	dispatchMaxBatch int
	dispatchLinger   time.Duration
	trainAsync       bool
	labelDelay       int // 0: keep the specializer default
	backend          Backend
	fleet            *FleetRecovery

	maxQueue      int // 0: no admission queue (unbounded legacy intake)
	dropPolicy    qos.DropPolicy
	dropPolicySet bool
	adaptive      *AdaptiveFidelity

	obs bool // unified observability layer (WithObservability)
}

func defaultConfig() config {
	return config{
		seed:             1,
		bootstrapFrames:  600,
		bootstrapEpochs:  8,
		baselineEpochs:   40,
		maxModels:        0,
		driftRecovery:    true,
		policy:           PolicyDeltaBM,
		workers:          runtime.GOMAXPROCS(0),
		minScore:         query.DefaultMinScore,
		dispatchMaxBatch: 64,
		dispatchLinger:   2 * time.Millisecond,
	}
}

// Option configures a Server at construction time.
type Option func(*config) error

// WithSeed sets the seed driving all randomness; equal seeds give
// identical servers. The seed must be non-zero.
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		if seed == 0 {
			return fmt.Errorf("odin: seed must be non-zero")
		}
		c.seed = seed
		return nil
	}
}

// WithBootstrapFrames sets the number of held-out frames used to train the
// DA-GAN projection and the baseline detector (default 600).
func WithBootstrapFrames(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("odin: bootstrap frames must be positive, got %d", n)
		}
		c.bootstrapFrames = n
		return nil
	}
}

// WithBootstrapEpochs sets the DA-GAN epoch budget (default 8).
func WithBootstrapEpochs(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("odin: bootstrap epochs must be positive, got %d", n)
		}
		c.bootstrapEpochs = n
		return nil
	}
}

// WithBaselineEpochs sets the baseline detector epoch budget (default 40).
func WithBaselineEpochs(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("odin: baseline epochs must be positive, got %d", n)
		}
		c.baselineEpochs = n
		return nil
	}
}

// WithMaxModels caps resident specialized models; 0 (the default) means
// unlimited. When the cap is exceeded the smallest cluster is evicted
// (§6.5 "Model Count Threshold").
func WithMaxModels(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("odin: max models must be non-negative, got %d", n)
		}
		c.maxModels = n
		return nil
	}
}

// WithDriftRecovery toggles the DETECTOR/SPECIALIZER/SELECTOR stack.
// Disabled, the heavyweight baseline serves every frame — the paper's
// "static system" comparison point.
func WithDriftRecovery(on bool) Option {
	return func(c *config) error {
		c.driftRecovery = on
		return nil
	}
}

// WithPolicy selects the SELECTOR policy (default PolicyDeltaBM).
func WithPolicy(p Policy) Option {
	return func(c *config) error {
		if _, err := p.corePolicy(); err != nil {
			return err
		}
		c.policy = p
		return nil
	}
}

// WithMinScore sets the server-wide detection-confidence floor query
// plans inherit (default 0.3). The floor is frozen into each plan at
// prepare time — concurrent queries never observe a mid-flight change —
// and a single query can override it with Query.WithMinScore.
func WithMinScore(s float64) Option {
	return func(c *config) error {
		if !(s >= 0 && s <= 1) { // written to also reject NaN
			return fmt.Errorf("odin: min score must be in [0,1], got %v", s)
		}
		c.minScore = s
		return nil
	}
}

// WithDispatcher routes every Stream.Run session through the server's
// fleet dispatcher: ready frame windows from all active sessions merge
// into shared ProcessBatch calls, amortising batched detection across
// cameras. Merged batches advance frames in session join order, so with
// inline training the dispatched fleet reproduces per-stream results
// bit for bit (see DESIGN.md §7). Merged batches run at the server-wide
// worker budget (WithWorkers); a StreamOptions.Workers override then
// applies only to synchronous Process calls. Default off — each Run
// session batches only its own frames.
func WithDispatcher(on bool) Option {
	return func(c *config) error {
		c.dispatcher = on
		return nil
	}
}

// WithMaxBatch sets the dispatcher's merged-batch flush threshold: the
// assembler flushes as soon as the pending windows hold at least n frames
// (default 64). Only meaningful with WithDispatcher.
func WithMaxBatch(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("odin: dispatcher max batch must be positive, got %d", n)
		}
		c.dispatchMaxBatch = n
		return nil
	}
}

// WithMaxLinger bounds how long a submitted window waits in the
// dispatcher's assembler to be co-batched with other cameras' windows
// (default 2ms). It is the no-starvation guarantee: every window is
// processed within this bound even if every other camera goes idle. Only
// meaningful with WithDispatcher.
func WithMaxLinger(d time.Duration) Option {
	return func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("odin: dispatcher max linger must be positive, got %v", d)
		}
		c.dispatchLinger = d
		return nil
	}
}

// WithTrainAsync moves drift-triggered specializer training off the
// serving path onto a background trainer goroutine: drift events schedule
// training jobs, frames are served by the previous-best model in the
// interim (surfaced as StreamResult.RecoveryPending), and the trained
// model is swapped in atomically when ready — eliminating the per-fleet
// latency spike of inline training. Track swaps with Server.ModelGen /
// PendingRecoveries / WaitRecoveries. Default off: training runs inline,
// which keeps results deterministic.
func WithTrainAsync(on bool) Option {
	return func(c *config) error {
		c.trainAsync = on
		return nil
	}
}

// WithLabelDelay sets how many stream frames after a drift event oracle
// labels become available (§5.2): the distilled YOLO-Lite serves from the
// drift onward, and the oracle-trained specialized model replaces it once
// the delay elapses. Larger delays keep recoveries on the cheap lite
// models; a delay longer than the stream defers specialized training
// entirely. Default 600.
func WithLabelDelay(frames int) Option {
	return func(c *config) error {
		if frames <= 0 {
			return fmt.Errorf("odin: label delay must be positive, got %d", frames)
		}
		c.labelDelay = frames
		return nil
	}
}

// FleetRecovery configures cross-camera correlated recovery
// (WithFleetRecovery).
type FleetRecovery struct {
	// Registry is the fleet-shared model registry. Pass the same
	// NewModelRegistry value to every server in the fleet; nil gives this
	// server a private registry (still useful: recurring regimes on one
	// camera adopt their own earlier recoveries).
	Registry *ModelRegistry
	// Capacity bounds a private registry (ignored when Registry is set);
	// ≤ 0 selects the default (32).
	Capacity int
	// AdoptDistance is the regime-signature distance in [0,1] at or under
	// which a stored model is adopted outright (and an in-flight build is
	// coalesced onto). 0 selects the default (0.25). Keep it tight: it is
	// the guard against transient accuracy fluctuations pulling in a
	// foreign model.
	AdoptDistance float64
	// WarmDistance is the distance at or under which a stored model
	// warm-starts training instead of scratch initialisation. 0 selects the
	// default (0.6). Must be ≥ AdoptDistance when both are set.
	WarmDistance float64
	// Source names this server in registry provenance and stats (e.g. a
	// camera ID). Empty defaults to "server".
	Source string
}

// WithFleetRecovery enables the fleet model registry on this server's
// drift-recovery path. It implies WithTrainAsync(true): recoveries are
// resolved against the registry by the background trainer, so training (or
// adoption) never blocks serving. See DESIGN.md §9 for the adopt /
// warm-start / coalesce decision table and the determinism contract.
func WithFleetRecovery(fr FleetRecovery) Option {
	return func(c *config) error {
		if fr.AdoptDistance < 0 || fr.AdoptDistance > 1 {
			return fmt.Errorf("odin: fleet adopt distance must be in [0,1], got %v", fr.AdoptDistance)
		}
		if fr.WarmDistance < 0 || fr.WarmDistance > 1 {
			return fmt.Errorf("odin: fleet warm distance must be in [0,1], got %v", fr.WarmDistance)
		}
		if fr.AdoptDistance > 0 && fr.WarmDistance > 0 && fr.WarmDistance < fr.AdoptDistance {
			return fmt.Errorf("odin: fleet warm distance %v must be ≥ adopt distance %v", fr.WarmDistance, fr.AdoptDistance)
		}
		if fr.Capacity < 0 {
			return fmt.Errorf("odin: fleet registry capacity must be non-negative, got %d", fr.Capacity)
		}
		c.fleet = &fr
		c.trainAsync = true
		return nil
	}
}

// WithBackend selects the numeric compute backend (default Float64). The
// choice applies to every model the server trains and serves — the DA-GAN
// projector, the baseline detector and all recovery models. Within either
// backend, results are bit-identical across worker counts; across backends
// they agree to float32 precision (DESIGN.md §8).
func WithBackend(b Backend) Option {
	return func(c *config) error {
		if b != Float64 && b != Float32 {
			return fmt.Errorf("odin: unknown backend %d", int(b))
		}
		c.backend = b
		return nil
	}
}

// WithWorkers sets the server-wide default fan-out for sharded stream
// processing and query execution; StreamOptions.Workers overrides it per
// stream. 0 (the default) resolves to GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("odin: workers must be non-negative, got %d", n)
		}
		if n == 0 {
			n = runtime.GOMAXPROCS(0)
		}
		c.workers = n
		return nil
	}
}

// WithMaxQueue bounds each Run session's admission queue to n frames:
// instead of buffering input without limit, a session admits at most n
// frames ahead of processing and applies the configured drop policy
// (WithDropPolicy, default DropBlock backpressure) when full. The queue is
// also what Stream.Offer admits into and what the adaptive fidelity
// controller observes. 0 (the default) keeps the legacy unbounded intake.
func WithMaxQueue(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("odin: max queue must be non-negative, got %d", n)
		}
		c.maxQueue = n
		return nil
	}
}

// WithDropPolicy selects what a full admission queue does with new frames:
// DropBlock (the default) applies backpressure to the producer, DropNewest
// sheds the arriving frame, DropOldest sheds the stalest queued frame.
// Shed frames are never silently lost: each yields a StreamResult with
// Dropped set, in sequence order, and is counted in Stats().Dropped.
// Requires WithMaxQueue.
func WithDropPolicy(p DropPolicy) Option {
	return func(c *config) error {
		switch p {
		case DropBlock, DropNewest, DropOldest:
		default:
			return fmt.Errorf("odin: unknown drop policy %d", uint8(p))
		}
		c.dropPolicy = p
		c.dropPolicySet = true
		return nil
	}
}

// AdaptiveFidelity configures the load-adaptive degradation controller
// (WithAdaptiveFidelity). Zero values take the documented defaults, so an
// empty struct is a working configuration.
type AdaptiveFidelity struct {
	// HighWater is the admission-queue occupancy in (0,1] at or above
	// which an observation counts toward degrading one level. Default
	// 0.75. Must exceed LowWater.
	HighWater float64
	// LowWater is the occupancy at or below which an observation counts
	// toward restoring one level. Default 0.25.
	LowWater float64
	// Patience is how many consecutive observations past a watermark are
	// required before the level steps once — the hysteresis that keeps a
	// single burst from flapping the ladder. Default 2.
	Patience int
	// MaxLevel caps how deep the ladder degrades: 1 = lite model only,
	// 2 = count pushdown, 3 = count with frame subsampling. Default 3.
	MaxLevel int
	// SubsampleEvery is the level-3 sampling stride: one frame in every
	// SubsampleEvery is counted, the rest are skipped outright (still
	// yielding stamped results). Default 4.
	SubsampleEvery int
	// Script replays a recorded degradation schedule instead of running
	// the live controller: entry w is the level applied to the logical
	// window of frames [w*MaxBatch, (w+1)*MaxBatch); sessions past the end
	// hold the final entry. Because the level depends only on a frame's
	// sequence number, a scripted session is bit-for-bit reproducible at
	// any worker count — the determinism contract for degraded modes
	// (DESIGN.md §11). Nil (the default) runs the live controller.
	Script []int
}

// WithObservability enables the unified observability layer: a metrics
// registry scraped via Server.WriteMetrics (Prometheus text format), a
// per-frame pipeline tracer recording per-stage latency (admission, queue
// wait, batch assembly, projection, advance, detect, emit), and a bounded
// ring of structured lifecycle events (drift detected, recovery
// enqueued/adopted/warm/coalesced/swapped, fidelity transitions,
// checkpoint save/restore) read via Server.RecentEvents.
//
// Instrumentation is strictly observational: results are bit-identical
// with observability on or off at every worker count, and the hot path
// adds no allocations (atomic counters and fixed-bucket histograms; see
// DESIGN.md §12 for the overhead budget). Default off — a server built
// without this option pays not even the clock reads.
func WithObservability(on bool) Option {
	return func(c *config) error {
		c.obs = on
		return nil
	}
}

// WithAdaptiveFidelity enables load-adaptive multi-fidelity degradation on
// every Run session: a per-stream hysteresis controller observes admission
// queue occupancy and walks the stream down a fidelity ladder (full →
// cheapest single model → count pushdown → count with subsampling) under
// sustained overload, restoring as load falls. Every result carries the
// fidelity that served it. Implies WithMaxQueue(64) unless a queue bound
// was set explicitly. At or under capacity the controller never leaves
// full fidelity and results are bit-identical to a non-adaptive server.
func WithAdaptiveFidelity(af AdaptiveFidelity) Option {
	return func(c *config) error {
		if af.HighWater < 0 || af.HighWater > 1 {
			return fmt.Errorf("odin: adaptive high water must be in [0,1], got %v", af.HighWater)
		}
		if af.LowWater < 0 || af.LowWater > 1 {
			return fmt.Errorf("odin: adaptive low water must be in [0,1], got %v", af.LowWater)
		}
		if af.HighWater > 0 && af.LowWater > 0 && af.HighWater <= af.LowWater {
			return fmt.Errorf("odin: adaptive high water %v must exceed low water %v", af.HighWater, af.LowWater)
		}
		if af.Patience < 0 {
			return fmt.Errorf("odin: adaptive patience must be non-negative, got %d", af.Patience)
		}
		if af.MaxLevel < 0 || af.MaxLevel > qos.MaxLevel {
			return fmt.Errorf("odin: adaptive max level must be in [0,%d], got %d", qos.MaxLevel, af.MaxLevel)
		}
		if af.SubsampleEvery < 0 {
			return fmt.Errorf("odin: adaptive subsample stride must be non-negative, got %d", af.SubsampleEvery)
		}
		for i, lv := range af.Script {
			if lv < 0 || lv > qos.MaxLevel {
				return fmt.Errorf("odin: adaptive script[%d] level %d out of range [0,%d]", i, lv, qos.MaxLevel)
			}
		}
		cp := af
		cp.Script = append([]int(nil), af.Script...)
		c.adaptive = &cp
		return nil
	}
}
