package odin

import (
	"strings"
	"testing"
)

// fastOptions keeps the public-API tests quick.
func fastOptions() Options {
	return Options{Seed: 3, BootstrapFrames: 80, BootstrapEpochs: 1, BaselineEpochs: 2}
}

func TestNewValidatesPolicy(t *testing.T) {
	if _, err := New(Options{Policy: "turbo"}); err == nil {
		t.Fatal("unknown policy should error")
	}
	for _, p := range []string{"", "delta-bm", "knn-u", "knn-w", "most-recent"} {
		if _, err := New(Options{Policy: p}); err != nil {
			t.Fatalf("policy %q should be accepted: %v", p, err)
		}
	}
}

func TestGenerateFrames(t *testing.T) {
	sys, err := New(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	frames := sys.GenerateFrames(DayData, 5)
	if len(frames) != 5 {
		t.Fatalf("got %d frames", len(frames))
	}
	for _, f := range frames {
		if f.Image == nil || len(f.Boxes) == 0 {
			t.Fatal("frame missing image or boxes")
		}
	}
}

func TestBootstrapProcessQuery(t *testing.T) {
	sys, err := New(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Bootstrap(nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Bootstrap(nil); err == nil {
		t.Fatal("double bootstrap should error")
	}

	frames := sys.GenerateFrames(DayData, 10)
	for _, f := range frames {
		r := sys.Process(f)
		if len(r.ModelsUsed) == 0 {
			t.Fatal("no model served the frame")
		}
	}
	if sys.Stats().Frames != 10 {
		t.Fatalf("frames %d", sys.Stats().Frames)
	}
	if sys.MemoryMB() <= 0 {
		t.Fatal("memory should be positive")
	}

	out, err := sys.Query("SELECT COUNT(detections) FROM stream USING MODEL yolo WHERE class='car'", frames)
	if err != nil {
		t.Fatal(err)
	}
	if out.FramesScanned != 10 {
		t.Fatalf("scanned %d", out.FramesScanned)
	}

	if _, err := sys.Query("SELECT bogus FROM", frames); err == nil {
		t.Fatal("bad SQL should error")
	}
}

func TestStaticMode(t *testing.T) {
	off := false
	opts := fastOptions()
	opts.DriftRecovery = &off
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Bootstrap(nil); err != nil {
		t.Fatal(err)
	}
	for _, f := range sys.GenerateFrames(NightData, 5) {
		r := sys.Process(f)
		if strings.Join(r.ModelsUsed, ",") != "YOLO" {
			t.Fatalf("static mode used %v", r.ModelsUsed)
		}
	}
	if sys.NumClusters() != 0 || sys.NumModels() != 0 {
		t.Fatal("static mode must not build clusters or models")
	}
}

func TestMustBootstrapPanics(t *testing.T) {
	sys, err := New(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Process before Bootstrap should panic")
		}
	}()
	sys.Process(sys.GenerateFrames(DayData, 1)[0])
}

func TestRegisterCustomModel(t *testing.T) {
	sys, err := New(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Bootstrap(nil); err != nil {
		t.Fatal(err)
	}
	sys.RegisterModel("oracle", func(f *Frame) []Detection {
		out := make([]Detection, len(f.Boxes))
		for i, b := range f.Boxes {
			out[i] = Detection{Box: b, Score: 1}
		}
		return out
	})
	frames := sys.GenerateFrames(DayData, 5)
	out, err := sys.Query("SELECT COUNT(detections) FROM s USING MODEL oracle WHERE class='car'", frames)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, f := range frames {
		for _, b := range f.Boxes {
			if b.Class == ClassCar {
				want++
			}
		}
	}
	if out.Count != want {
		t.Fatalf("oracle count %d, want %d", out.Count, want)
	}
}
