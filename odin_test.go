package odin

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// fastServerOptions keeps the public-API tests quick.
func fastServerOptions(seed uint64) []Option {
	return []Option{
		WithSeed(seed),
		WithBootstrapFrames(80),
		WithBootstrapEpochs(1),
		WithBaselineEpochs(2),
	}
}

// fastOptions is the legacy-shim equivalent of fastServerOptions.
func fastOptions() Options {
	return Options{Seed: 3, BootstrapFrames: 80, BootstrapEpochs: 1, BaselineEpochs: 2}
}

// sharedSrv is one bootstrapped server reused by the tests that only read
// it (queries, error paths, stream smoke tests). Tests that mutate drift
// state in ways they assert on build their own server instead.
var (
	sharedSrv  *Server
	sharedOnce sync.Once
	sharedErr  error
)

func sharedServer(t *testing.T) *Server {
	t.Helper()
	sharedOnce.Do(func() {
		sharedSrv, sharedErr = New(fastServerOptions(3)...)
		if sharedErr == nil {
			sharedErr = sharedSrv.Bootstrap(context.Background(), nil)
		}
	})
	if sharedErr != nil {
		t.Fatalf("shared server: %v", sharedErr)
	}
	return sharedSrv
}

func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  Option
	}{
		{"zero seed", WithSeed(0)},
		{"neg frames", WithBootstrapFrames(-1)},
		{"zero epochs", WithBootstrapEpochs(0)},
		{"neg baseline", WithBaselineEpochs(-2)},
		{"neg models", WithMaxModels(-1)},
		{"neg workers", WithWorkers(-4)},
		{"bad policy", WithPolicy(Policy(99))},
	}
	for _, c := range cases {
		if _, err := New(c.opt); err == nil {
			t.Errorf("%s: New should reject the option", c.name)
		}
	}
	if _, err := New(fastServerOptions(1)...); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

func TestPolicyRoundTrip(t *testing.T) {
	if _, err := ParsePolicy("turbo"); err == nil {
		t.Fatal("unknown policy should error")
	}
	for _, s := range []string{"delta-bm", "knn-u", "knn-w", "most-recent"} {
		p, err := ParsePolicy(s)
		if err != nil {
			t.Fatalf("policy %q should parse: %v", s, err)
		}
		if p.String() != s {
			t.Fatalf("round trip %q -> %v", s, p)
		}
	}
	if p, err := ParsePolicy(""); err != nil || p != PolicyDeltaBM {
		t.Fatalf("empty policy should default to delta-bm, got %v, %v", p, err)
	}
}

func TestGenerateFrames(t *testing.T) {
	srv, err := New(fastServerOptions(3)...)
	if err != nil {
		t.Fatal(err)
	}
	frames := srv.GenerateFrames(DayData, 5)
	if len(frames) != 5 {
		t.Fatalf("got %d frames", len(frames))
	}
	for _, f := range frames {
		if f.Image == nil || len(f.Boxes) == 0 {
			t.Fatal("frame missing image or boxes")
		}
	}
}

func TestLifecycleErrors(t *testing.T) {
	srv, err := New(fastServerOptions(5)...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Everything that needs models reports ErrNotBootstrapped, not a panic.
	if _, err := srv.OpenStream(ctx, StreamOptions{}); !errors.Is(err, ErrNotBootstrapped) {
		t.Fatalf("OpenStream before Bootstrap: %v", err)
	}
	if _, err := srv.Query(ctx, "SELECT COUNT(detections) FROM s USING MODEL yolo WHERE class='car'", nil); !errors.Is(err, ErrNotBootstrapped) {
		t.Fatalf("Query before Bootstrap: %v", err)
	}
	if srv.Stats() != (Stats{}) || srv.MemoryMB() != 0 || srv.NumClusters() != 0 || srv.NumModels() != 0 {
		t.Fatal("telemetry should be zero before Bootstrap")
	}

	if err := srv.Bootstrap(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if err := srv.Bootstrap(ctx, nil); !errors.Is(err, ErrAlreadyBootstrapped) {
		t.Fatalf("double Bootstrap: %v", err)
	}

	st, err := srv.OpenStream(ctx, StreamOptions{Name: "cam-0"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Name() != "cam-0" {
		t.Fatalf("stream name %q", st.Name())
	}
	f := srv.GenerateFrames(DayData, 1)[0]
	if _, err := st.Process(ctx, f); err != nil {
		t.Fatalf("Process: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Process(ctx, f); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("Process on closed stream: %v", err)
	}

	st2, err := srv.OpenStream(ctx, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.OpenStream(ctx, StreamOptions{}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("OpenStream after Close: %v", err)
	}
	// Run on a stream of a closed server returns an already-closed channel.
	if _, ok := <-st2.Run(ctx, make(chan *Frame)); ok {
		t.Fatal("Run after server Close should return a closed channel")
	}
	if _, err := srv.Query(ctx, "SELECT COUNT(detections) FROM s USING MODEL yolo WHERE class='car'", nil); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Query after Close: %v", err)
	}
	if err := srv.Bootstrap(ctx, nil); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Bootstrap after Close: %v", err)
	}
}

func TestBootstrapHonoursCancelledContext(t *testing.T) {
	srv, err := New(fastServerOptions(6)...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Bootstrap(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Bootstrap: %v", err)
	}
	// The failed attempt must not count as bootstrapped.
	if err := srv.Bootstrap(context.Background(), nil); err != nil {
		t.Fatalf("Bootstrap after cancelled attempt: %v", err)
	}
}

// driftStream returns a deterministic 3-phase drifting stream drawn from
// srv's seeded generator: night, then day, then snow — enough distribution
// shift to exercise outliers, cluster births, and drift events.
func driftStream(srv *Server, perPhase int) []*Frame {
	var out []*Frame
	for _, sub := range []Subset{NightData, DayData, SnowData} {
		out = append(out, srv.GenerateFrames(sub, perPhase)...)
	}
	return out
}

// TestRunMatchesSequentialProcess is the facade-level determinism
// guarantee: sharded Run at 1, 4 and 8 workers yields results identical to
// sequential Process on an identically seeded server — detections, cluster
// assignments, drift events and stats. Run under -race in CI.
func TestRunMatchesSequentialProcess(t *testing.T) {
	const seed, perPhase = 11, 60

	// Reference: sequential Process on its own server.
	ref, err := New(fastServerOptions(seed)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Bootstrap(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	frames := driftStream(ref, perPhase)
	st, err := ref.OpenStream(context.Background(), StreamOptions{Name: "seq"})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(frames))
	for i, f := range frames {
		r, err := st.Process(context.Background(), f)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r.Fingerprint()
	}
	wantStats := ref.Stats()
	if wantStats.DriftEvents == 0 {
		t.Fatal("drift stream produced no drift events; the determinism test would be vacuous")
	}

	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			srv, err := New(fastServerOptions(seed)...)
			if err != nil {
				t.Fatal(err)
			}
			if err := srv.Bootstrap(context.Background(), nil); err != nil {
				t.Fatal(err)
			}
			frames := driftStream(srv, perPhase)
			stream, err := srv.OpenStream(context.Background(), StreamOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			in := make(chan *Frame)
			go func() {
				defer close(in)
				for _, f := range frames {
					in <- f
				}
			}()
			got := 0
			for res := range stream.Run(context.Background(), in) {
				if res.Seq != got {
					t.Fatalf("out-of-order result: seq %d at position %d", res.Seq, got)
				}
				if res.Frame != frames[got] {
					t.Fatalf("result %d carries the wrong frame", got)
				}
				if key := res.Fingerprint(); key != want[got] {
					t.Fatalf("frame %d diverged from sequential:\n got %s\nwant %s", got, key, want[got])
				}
				got++
			}
			if got != len(frames) {
				t.Fatalf("received %d/%d results", got, len(frames))
			}
			if stats := srv.Stats(); !reflect.DeepEqual(stats, wantStats) {
				t.Fatalf("stats diverged: got %+v want %+v", stats, wantStats)
			}
		})
	}
}

func TestRunContextCancellation(t *testing.T) {
	srv := sharedServer(t)
	stream, err := srv.OpenStream(context.Background(), StreamOptions{Workers: 2, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan *Frame)
	frames := srv.GenerateFrames(DayData, 8)
	out := stream.Run(ctx, in)

	// Deliver one frame, read its result, then cancel: the result channel
	// must close without the producer blocking forever.
	in <- frames[0]
	if _, ok := <-out; !ok {
		t.Fatal("first result missing")
	}
	cancel()
	for range out { // drain whatever was in flight; must terminate
	}
}

func TestRunExitsWhenStreamCloses(t *testing.T) {
	srv := sharedServer(t)
	stream, err := srv.OpenStream(context.Background(), StreamOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *Frame)
	out := stream.Run(context.Background(), in)
	in <- srv.GenerateFrames(DayData, 1)[0]
	if _, ok := <-out; !ok {
		t.Fatal("first result missing")
	}
	stream.Close()
	// The Run loop observes the closed stream on its next window; the
	// result channel must close even though `in` stays open.
	for range out {
	}
}

func TestQueryContextCancellation(t *testing.T) {
	srv := sharedServer(t)
	frames := srv.GenerateFrames(DayData, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Query(ctx, "SELECT COUNT(detections) FROM s USING MODEL yolo WHERE class='car'", frames); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Query: %v", err)
	}
}

func TestQueryOverOdinAndYolo(t *testing.T) {
	srv := sharedServer(t)
	frames := srv.GenerateFrames(DayData, 10)
	for _, model := range []string{"odin", "yolo"} {
		out, err := srv.Query(context.Background(),
			"SELECT COUNT(detections) FROM stream USING MODEL "+model+" WHERE class='car'", frames)
		if err != nil {
			t.Fatalf("model %s: %v", model, err)
		}
		if out.FramesScanned != 10 {
			t.Fatalf("model %s scanned %d", model, out.FramesScanned)
		}
	}
	if _, err := srv.Query(context.Background(), "SELECT bogus FROM", frames); err == nil {
		t.Fatal("bad SQL should error")
	}
}

func TestRegisterCustomModel(t *testing.T) {
	srv := sharedServer(t)
	srv.RegisterModel("oracle", func(f *Frame) []Detection {
		out := make([]Detection, len(f.Boxes))
		for i, b := range f.Boxes {
			out[i] = Detection{Box: b, Score: 1}
		}
		return out
	})
	frames := srv.GenerateFrames(DayData, 5)
	out, err := srv.Query(context.Background(), "SELECT COUNT(detections) FROM s USING MODEL oracle WHERE class='car'", frames)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, f := range frames {
		for _, b := range f.Boxes {
			if b.Class == ClassCar {
				want++
			}
		}
	}
	if out.Count != want {
		t.Fatalf("oracle count %d, want %d", out.Count, want)
	}
}

func TestConcurrentStreamsShareServer(t *testing.T) {
	srv, err := New(fastServerOptions(13)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Bootstrap(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	const cams, perCam = 3, 30
	camFrames := make([][]*Frame, cams)
	subsets := []Subset{NightData, DayData, SnowData}
	for c := range camFrames {
		camFrames[c] = srv.GenerateFrames(subsets[c], perCam)
	}
	var wg sync.WaitGroup
	for c := 0; c < cams; c++ {
		st, err := srv.OpenStream(context.Background(), StreamOptions{Name: fmt.Sprintf("cam-%d", c), Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(st *Stream, frames []*Frame) {
			defer wg.Done()
			in := make(chan *Frame)
			go func() {
				defer close(in)
				for _, f := range frames {
					in <- f
				}
			}()
			n := 0
			for res := range st.Run(context.Background(), in) {
				if len(res.ModelsUsed) == 0 {
					t.Errorf("%s: frame %d served by no model", st.Name(), res.Seq)
				}
				n++
			}
			if n != perCam {
				t.Errorf("%s: got %d/%d results", st.Name(), n, perCam)
			}
		}(st, camFrames[c])
	}
	wg.Wait()
	if got := srv.Stats().Frames; got != cams*perCam {
		t.Fatalf("server saw %d frames, want %d", got, cams*perCam)
	}
}

func TestStaticMode(t *testing.T) {
	srv, err := New(append(fastServerOptions(7), WithDriftRecovery(false))...)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Bootstrap(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	st, err := srv.OpenStream(context.Background(), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range srv.GenerateFrames(NightData, 5) {
		r, err := st.Process(context.Background(), f)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(r.ModelsUsed, ",") != "YOLO" {
			t.Fatalf("static mode used %v", r.ModelsUsed)
		}
	}
	if srv.NumClusters() != 0 || srv.NumModels() != 0 {
		t.Fatal("static mode must not build clusters or models")
	}
}

// --- legacy System shim ---

func TestSystemShimLifecycle(t *testing.T) {
	sys, err := NewSystem(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Bootstrap(nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Bootstrap(nil); !errors.Is(err, ErrAlreadyBootstrapped) {
		t.Fatalf("double bootstrap: %v", err)
	}

	frames := sys.GenerateFrames(DayData, 10)
	for _, f := range frames {
		r := sys.Process(f)
		if len(r.ModelsUsed) == 0 {
			t.Fatal("no model served the frame")
		}
	}
	if sys.Stats().Frames != 10 {
		t.Fatalf("frames %d", sys.Stats().Frames)
	}
	if sys.MemoryMB() <= 0 {
		t.Fatal("memory should be positive")
	}

	out, err := sys.Query("SELECT COUNT(detections) FROM stream USING MODEL yolo WHERE class='car'", frames)
	if err != nil {
		t.Fatal(err)
	}
	if out.FramesScanned != 10 {
		t.Fatalf("scanned %d", out.FramesScanned)
	}
	if sys.Server() == nil {
		t.Fatal("shim should expose its Server")
	}
	_ = sys.NumClusters()
	_ = sys.NumModels()
}

func TestSystemShimRejectsBadPolicy(t *testing.T) {
	if _, err := NewSystem(Options{Policy: "turbo"}); err == nil {
		t.Fatal("unknown policy should error")
	}
}

func TestSystemShimProcessPanicsBeforeBootstrap(t *testing.T) {
	sys, err := NewSystem(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("System.Process before Bootstrap should keep the legacy panic contract")
		}
	}()
	sys.Process(sys.GenerateFrames(DayData, 1)[0])
}
