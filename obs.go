package odin

import (
	"errors"
	"io"

	"odin/internal/obs"
)

// This file is the public face of the unified observability layer
// (WithObservability): Prometheus-text metrics via WriteMetrics, the
// structured lifecycle-event ring via RecentEvents, and the re-exported
// event vocabulary. The instrumentation itself lives in internal/obs and
// is threaded through the core pipeline, the fleet dispatcher, the async
// trainer and the QoS admission path; see DESIGN.md §12 for the overhead
// budget and the determinism contract (results are bit-identical with
// observability on or off).

// ErrObservabilityDisabled is returned by WriteMetrics on a server built
// without WithObservability.
var ErrObservabilityDisabled = errors.New("odin: observability disabled (WithObservability unset)")

// Event is one structured lifecycle event: drift detected, a recovery
// milestone, a fidelity transition, or a checkpoint save/restore. Seq is a
// monotone per-server sequence number; Cluster and Gen are -1 when not
// applicable.
type Event = obs.Event

// Lifecycle event kinds, as they appear in Event.Kind and in the
// odin_events_total{kind=...} metric.
const (
	EvDrift             = obs.EvDrift
	EvRecoveryEnqueued  = obs.EvRecoveryEnqueued
	EvRecoveryScratch   = obs.EvRecoveryScratch
	EvRecoveryWarm      = obs.EvRecoveryWarm
	EvRecoveryAdopted   = obs.EvRecoveryAdopted
	EvRecoveryCoalesced = obs.EvRecoveryCoalesced
	EvRecoverySwapped   = obs.EvRecoverySwapped
	EvRecoveryRollback  = obs.EvRecoveryRollback
	EvRecoveryFailed    = obs.EvRecoveryFailed
	EvRecoveryDropped   = obs.EvRecoveryDropped
	EvFidelityDegrade   = obs.EvFidelityDegrade
	EvFidelityRestore   = obs.EvFidelityRestore
	EvCheckpointSave    = obs.EvCheckpointSave
	EvCheckpointRestore = obs.EvCheckpointRestore
)

// ObservabilityEnabled reports whether the server was built
// WithObservability.
func (s *Server) ObservabilityEnabled() bool { return s.obs != nil }

// WriteMetrics renders every registered metric in the Prometheus text
// exposition format — the payload odin-serve exposes at /metrics. Output
// is sorted (families and series), so successive scrapes differ only in
// values. Safe for concurrent use with serving; a scrape never blocks the
// frame hot path (its metrics are plain atomics). Returns
// ErrObservabilityDisabled on a server built without WithObservability.
func (s *Server) WriteMetrics(w io.Writer) error {
	if s.obs == nil {
		return ErrObservabilityDisabled
	}
	return s.obs.Registry().WritePrometheus(w)
}

// RecentEvents returns up to n recent lifecycle events, oldest first
// (n ≤ 0 returns the whole retained ring; the ring keeps the latest 256).
// Nil on a server built without WithObservability.
func (s *Server) RecentEvents(n int) []Event {
	if s.obs == nil {
		return nil
	}
	return s.obs.Events().Recent(n)
}

// registerServerMetrics exports the counters the serving stack already
// maintains under its own locks (pipeline Stats, trainer/registry/dispatch
// telemetry) as scrape-time callbacks — no double bookkeeping on the hot
// path. Every family is registered up front, reading zero while its
// subsystem is absent, so the exposition's family set is stable from the
// first scrape (and golden-testable).
//
// Lock order: a scrape holds the metric registry lock while the callbacks
// take s.mu (and the pipeline lock) — safe because no code path acquires
// them in the opposite order (hot-path metric updates are lock-free
// atomics).
func (s *Server) registerServerMetrics() {
	reg := s.obs.Registry()
	stat := func(f func(Stats) float64) func() float64 {
		return func() float64 { return f(s.Stats()) }
	}

	// Pipeline ledger (core Stats).
	reg.CounterFunc("odin_frames_total",
		"Frames processed by the drift-aware pipeline.",
		stat(func(st Stats) float64 { return float64(st.Frames) }))
	reg.CounterFunc("odin_outliers_total",
		"Frames flagged as outliers by the drift detector.",
		stat(func(st Stats) float64 { return float64(st.Outliers) }))
	reg.CounterFunc("odin_drift_events_total",
		"Drift events raised (outlier clusters crossing the drift threshold).",
		stat(func(st Stats) float64 { return float64(st.DriftEvents) }))
	reg.CounterFunc("odin_dropped_frames_total",
		"Frames shed by admission-queue drop policies, as ledgered by the pipeline.",
		stat(func(st Stats) float64 { return float64(st.Dropped) }))
	reg.CounterFunc("odin_sim_gpu_seconds_total",
		"Simulated GPU seconds consumed by detection.",
		stat(func(st Stats) float64 { return st.SimTime }))
	for _, f := range []struct {
		fid string
		get func(Stats) float64
	}{
		{"full", func(st Stats) float64 { return float64(st.FullFrames) }},
		{"lite", func(st Stats) float64 { return float64(st.LiteFrames) }},
		{"count", func(st Stats) float64 { return float64(st.CountFrames) }},
		{"skip", func(st Stats) float64 { return float64(st.SkipFrames) }},
	} {
		reg.CounterFunc("odin_fidelity_frames_total",
			"Frames served, by the fidelity that served them.",
			stat(f.get), obs.Label{Key: "fidelity", Value: f.fid})
	}

	// Model-set gauges.
	reg.GaugeFunc("odin_model_generation",
		"Model-set generation (increments on every trained-model swap).",
		func() float64 { return float64(s.ModelGen()) })
	reg.GaugeFunc("odin_resident_models",
		"Resident specialized models.",
		func() float64 { return float64(s.NumModels()) })
	reg.GaugeFunc("odin_clusters",
		"Discovered concept clusters.",
		func() float64 { return float64(s.NumClusters()) })
	reg.GaugeFunc("odin_pending_recoveries",
		"Drift recoveries scheduled but not yet swapped in (async training).",
		func() float64 { return float64(s.PendingRecoveries()) })
	reg.GaugeFunc("odin_model_memory_mb",
		"Simulated resident model memory in MB.",
		s.MemoryMB)

	// Async trainer outcomes.
	for _, o := range []struct {
		outcome string
		get     func(TrainerStats) float64
	}{
		{"scratch", func(ts TrainerStats) float64 { return float64(ts.Scratch) }},
		{"warm", func(ts TrainerStats) float64 { return float64(ts.Warm) }},
		{"adopted", func(ts TrainerStats) float64 { return float64(ts.Adopted) }},
		{"coalesced", func(ts TrainerStats) float64 { return float64(ts.Coalesced) }},
		{"failed", func(ts TrainerStats) float64 { return float64(ts.Failed) }},
		{"dropped", func(ts TrainerStats) float64 { return float64(ts.Dropped) }},
	} {
		get := o.get
		reg.CounterFunc("odin_trainer_jobs_total",
			"Async recovery-trainer jobs by outcome.",
			func() float64 { return get(s.TrainerStats()) },
			obs.Label{Key: "outcome", Value: o.outcome})
	}

	// Fleet model registry.
	reg.GaugeFunc("odin_registry_models",
		"Models resident in the fleet registry.",
		func() float64 { return float64(s.RegistryStats().Size) })
	reg.GaugeFunc("odin_registry_capacity",
		"Fleet registry capacity bound.",
		func() float64 { return float64(s.RegistryStats().Capacity) })
	for _, o := range []struct {
		outcome string
		get     func(RegistryStats) float64
	}{
		{"adopt", func(rs RegistryStats) float64 { return float64(rs.AdoptHits) }},
		{"warm", func(rs RegistryStats) float64 { return float64(rs.WarmHits) }},
		{"coalesce", func(rs RegistryStats) float64 { return float64(rs.Coalesced) }},
		{"miss", func(rs RegistryStats) float64 { return float64(rs.Misses) }},
	} {
		get := o.get
		reg.CounterFunc("odin_registry_lookups_total",
			"Fleet registry resolutions by outcome.",
			func() float64 { return get(s.RegistryStats()) },
			obs.Label{Key: "outcome", Value: o.outcome})
	}
	reg.CounterFunc("odin_registry_published_total",
		"Models published to the fleet registry.",
		func() float64 { return float64(s.RegistryStats().Published) })
	reg.CounterFunc("odin_registry_evicted_total",
		"Fleet registry entries evicted by the LRU capacity bound.",
		func() float64 { return float64(s.RegistryStats().Evicted) })

	// Fleet dispatcher.
	reg.CounterFunc("odin_dispatch_batches_total",
		"Merged ProcessBatch calls issued by the fleet dispatcher.",
		func() float64 { return float64(s.DispatchStats().Batches) })
	reg.CounterFunc("odin_dispatch_windows_total",
		"Session windows flushed through the fleet dispatcher.",
		func() float64 { return float64(s.DispatchStats().Windows) })
	reg.CounterFunc("odin_dispatch_frames_total",
		"Frames processed through the fleet dispatcher.",
		func() float64 { return float64(s.DispatchStats().Frames) })
	reg.CounterFunc("odin_dispatch_partial_flushes_total",
		"Dispatcher flushes cut by the weighted round-robin frame budget.",
		func() float64 { return float64(s.DispatchStats().PartialFlushes) })
	reg.GaugeFunc("odin_dispatch_max_merge",
		"Largest number of windows merged into one dispatcher batch.",
		func() float64 { return float64(s.DispatchStats().MaxMerge) })
	reg.GaugeFunc("odin_dispatch_queued_windows",
		"Windows waiting in the dispatcher assembler.",
		func() float64 { return float64(s.DispatchStats().QueuedWindows) })
	reg.GaugeFunc("odin_dispatch_queued_frames",
		"Frames waiting in the dispatcher assembler.",
		func() float64 { return float64(s.DispatchStats().QueuedFrames) })
}
