package odin

import (
	"context"
	"errors"
	"sync"

	"odin/internal/dispatch"
	"odin/internal/query"
)

// StreamOptions configures one camera-stream session.
type StreamOptions struct {
	// Name labels the stream (diagnostics only).
	Name string
	// Workers bounds the sharded fan-out of the per-frame
	// project→select→detect stages. 0 uses the server default
	// (WithWorkers, which itself defaults to GOMAXPROCS). On a server
	// built WithDispatcher, Run windows are merged across streams and
	// processed at the server-wide worker budget, so Workers then applies
	// only to synchronous Process calls; results are identical at every
	// worker count either way.
	Workers int
	// MaxBatch caps how many already-arrived frames one Run dispatch
	// aggregates. Larger windows amortise better (batched detection) at
	// the cost of per-frame latency. 0 picks 4×Workers (at least 8).
	MaxBatch int
	// Buffer is the capacity of the channel Run returns. 0 picks MaxBatch.
	Buffer int
}

// StreamResult is one frame's outcome on a Run channel. Results are
// delivered in frame order regardless of how the stages were sharded.
type StreamResult struct {
	// Seq is the 0-based position of the frame within this Run.
	Seq int
	// Frame is the input frame (with its ground truth, if any).
	Frame *Frame
	Result
}

// WindowOptions configures a continuous-query subscription
// (Stream.Subscribe).
type WindowOptions struct {
	// Size is the number of frames aggregated per emitted window. 0 uses
	// the stream's MaxBatch. Window boundaries are frame-sequence based,
	// so they are deterministic regardless of how Run batched the frames.
	Size int
	// Buffer is the capacity of the subscription's result channel
	// (0 picks 4). A full channel applies backpressure to the stream's
	// Run loop, so consume window results concurrently with the Run
	// results (or size Buffer for the expected window count).
	Buffer int
}

// WindowResult is one window's aggregate on a subscription channel.
// Windows are emitted in frame order; the embedded QueryResult carries the
// count, per-frame counts and data-reduction stats for the window's
// frames.
type WindowResult struct {
	// Window is the 0-based window index within this subscription.
	Window int
	// StartSeq and EndSeq are the inclusive Run sequence range the window
	// covers. The final window of a session may be partial.
	StartSeq, EndSeq int
	// Err is non-nil when evaluating the window failed (the subscription
	// context was cancelled mid-window, or a custom batch model
	// misbehaved). An errored window carries no aggregate and is the
	// subscription's final emission: the channel closes after it.
	Err error
	// GenLo and GenHi are the lowest and highest model-set generation that
	// served the window's frames — a window spanning a model swap reports
	// GenLo < GenHi, so per-window accuracy shifts can be attributed to
	// the swap.
	GenLo, GenHi uint64
	// RecoveryPending counts the window's frames served while a drift
	// recovery was still training (async mode; always 0 inline) — the
	// per-window visibility of the interim previous-best policy.
	RecoveryPending int
	QueryResult
}

// subscription is one standing query attached to a stream: a prepared
// plan plus the current window's accumulation state. All mutable state is
// touched only by the Run loop (and by the final flush), never
// concurrently.
type subscription struct {
	ctx    context.Context
	plan   *query.Plan
	shared bool // plan's model is the drift pipeline: reuse Run's results
	size   int
	ch     chan WindowResult

	win    int
	start  int
	frames []*Frame
	dets   [][]Detection
	genLo  uint64
	genHi  uint64
	pendN  int
	closed bool
}

// window evaluates and resets the current accumulation. For shared plans
// it reduces the pipeline detections the Run loop already produced; for
// other plans it executes the model over the window's frames. A failed
// evaluation (cancelled subscription context, misbehaving custom batch
// model) is reported as a WindowResult carrying Err, so the consumer can
// distinguish it from a normal end of session.
func (sub *subscription) window() WindowResult {
	wr := WindowResult{
		Window: sub.win, StartSeq: sub.start, EndSeq: sub.start + len(sub.frames) - 1,
		GenLo: sub.genLo, GenHi: sub.genHi, RecoveryPending: sub.pendN,
	}
	if sub.shared {
		wr.QueryResult = *sub.plan.ExecuteOver(sub.frames, sub.dets)
	} else if res, err := sub.plan.Execute(sub.ctx, sub.frames); err != nil {
		wr.Err = err
	} else {
		wr.QueryResult = *res
	}
	sub.win++
	sub.frames = sub.frames[:0]
	sub.dets = sub.dets[:0]
	return wr
}

// Stream is one camera session against a shared Server. A stream is not
// itself safe for concurrent Process calls (frames of one camera are
// ordered); open one Stream per camera instead — streams of the same
// Server process frames concurrently and share every model.
type Stream struct {
	srv      *Server
	name     string
	workers  int
	maxBatch int
	buffer   int

	closeOnce sync.Once
	done      chan struct{} // closed by Close; wakes blocked Run loops

	subMu     sync.Mutex
	subs      []*subscription
	runActive bool // a Run session owns the subscriptions' lifecycle
}

// closedNow reports whether Close has been called.
func (st *Stream) closedNow() bool {
	select {
	case <-st.done:
		return true
	default:
		return false
	}
}

// Name returns the stream's label.
func (st *Stream) Name() string { return st.name }

// Process runs one frame through the drift-aware pipeline synchronously
// and returns its result. It honours ctx before starting (not mid-frame).
func (st *Stream) Process(ctx context.Context, f *Frame) (Result, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	if st.closedNow() {
		return Result{}, ErrStreamClosed
	}
	p, err := st.srv.pipe()
	if err != nil {
		return Result{}, err
	}
	return p.Process(f), nil
}

// Subscribe attaches a standing continuous query to the stream: every
// frame a Run session processes is offered to the subscription, and each
// completed window of o.Size frames emits one WindowResult aggregate on
// the returned channel, in frame order. Plans whose model is the
// drift-aware pipeline ("odin") reduce the session's own sharded
// ProcessBatch results — detection runs once per window no matter how many
// subscriptions share the stream, and their filters act as counting
// filters (the pipeline must observe every frame for drift detection).
// Plans bound to other models execute their model over each window's
// frames, with filters skipping model work exactly as in offline queries.
//
// The subscription lives until its context is cancelled, the stream is
// closed, or the Run session ends — a session's end flushes a final
// (possibly partial) window and closes the channel. Subscribing before
// Run starts is allowed; frames only flow while a Run session is active
// (synchronous Process calls do not feed subscriptions).
func (st *Stream) Subscribe(ctx context.Context, pq *PreparedQuery, o WindowOptions) (<-chan WindowResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if pq == nil {
		return nil, errors.New("odin: nil prepared query")
	}
	if pq.srv != st.srv {
		return nil, ErrForeignQuery
	}
	if err := st.srv.alive(); err != nil {
		return nil, err
	}
	size := o.Size
	if size <= 0 {
		size = st.maxBatch
	}
	buffer := o.Buffer
	if buffer <= 0 {
		buffer = 4
	}
	sub := &subscription{
		ctx:    ctx,
		plan:   pq.plan,
		shared: pq.pipelineShared,
		size:   size,
		ch:     make(chan WindowResult, buffer),
	}
	st.subMu.Lock()
	defer st.subMu.Unlock()
	if st.closedNow() {
		return nil, ErrStreamClosed
	}
	st.subs = append(st.subs, sub)
	return sub.ch, nil
}

// snapshotSubs copies the active subscription list.
func (st *Stream) snapshotSubs() []*subscription {
	st.subMu.Lock()
	defer st.subMu.Unlock()
	out := make([]*subscription, len(st.subs))
	copy(out, st.subs)
	return out
}

// dropSub closes a subscription's channel and removes it. Idempotent.
func (st *Stream) dropSub(sub *subscription) {
	st.subMu.Lock()
	defer st.subMu.Unlock()
	st.dropSubLocked(sub)
}

func (st *Stream) dropSubLocked(sub *subscription) {
	if sub.closed {
		return
	}
	sub.closed = true
	close(sub.ch)
	for i, s := range st.subs {
		if s == sub {
			st.subs = append(st.subs[:i], st.subs[i+1:]...)
			break
		}
	}
}

// deliverSubs offers one processed window of the Run session to every
// subscription, emitting completed aggregation windows along the way.
// Returns false when the session must abort (run context cancelled or
// stream closed while blocked on a subscriber).
func (st *Stream) deliverSubs(ctx context.Context, batch []*Frame, results []Result, seqBase int) bool {
	subs := st.snapshotSubs()
	if len(subs) == 0 {
		return true
	}
	for _, sub := range subs {
		if sub.ctx.Err() != nil {
			st.dropSub(sub)
			continue
		}
	frames:
		for i, f := range batch {
			if len(sub.frames) == 0 {
				sub.start = seqBase + i
				sub.genLo, sub.genHi = results[i].ModelGen, results[i].ModelGen
				sub.pendN = 0
			}
			sub.frames = append(sub.frames, f)
			if g := results[i].ModelGen; g < sub.genLo {
				sub.genLo = g
			} else if g > sub.genHi {
				sub.genHi = g
			}
			if results[i].RecoveryPending {
				sub.pendN++
			}
			if sub.shared {
				sub.dets = append(sub.dets, results[i].Detections)
			}
			if len(sub.frames) < sub.size {
				continue
			}
			wr := sub.window()
			select {
			case sub.ch <- wr:
				if wr.Err != nil { // errored windows end the subscription
					st.dropSub(sub)
					break frames
				}
			case <-sub.ctx.Done():
				st.dropSub(sub)
				break frames
			case <-st.done:
				return false
			case <-ctx.Done():
				return false
			}
		}
	}
	return true
}

// finishSubs ends the Run session's subscriptions. A clean end (input
// exhausted) flushes each subscription's partial window before closing its
// channel; a cancelled session closes them without the flush (cancellation
// does not promise the partial window). The flush honours the Run context
// too, so an abandoned subscription channel cannot pin the session's
// goroutine past a cancellation.
func (st *Stream) finishSubs(ctx context.Context, clean bool) {
	// Loop until the list is observed empty under the lock that also
	// clears runActive: a Subscribe racing this teardown lands either in a
	// snapshot (and is closed here) or after runActive is cleared (and
	// belongs to the next session) — never orphaned.
	for {
		st.subMu.Lock()
		if len(st.subs) == 0 {
			st.runActive = false
			st.subMu.Unlock()
			return
		}
		subs := make([]*subscription, len(st.subs))
		copy(subs, st.subs)
		st.subMu.Unlock()
		for _, sub := range subs {
			if clean && len(sub.frames) > 0 && sub.ctx.Err() == nil {
				select {
				case sub.ch <- sub.window():
				case <-sub.ctx.Done():
				case <-st.done:
				case <-ctx.Done():
				}
			}
			st.dropSub(sub)
		}
	}
}

// Run consumes frames from in until it closes (or ctx is cancelled, or
// the stream is closed) and returns a channel of results in frame order.
// Arrived frames are aggregated into windows of at most MaxBatch and
// processed with the project and detect stages sharded across the
// stream's worker budget; results are bit-identical to sequential Process
// calls on the same frames. Cancellation closes the result channel
// without draining in.
//
// Run pins the server's pipeline for its whole lifetime: every frame it
// consumes from in is processed, even if the server is closed mid-run
// (Close's "in-flight work finishes" contract). If the server was already
// closed (or never bootstrapped) when Run is called, the returned channel
// is closed immediately — and so are the stream's subscription channels
// (no session will feed them); check Process or OpenStream for the typed
// error. A stream carries at most one Run session at a time: a second Run
// while one is active also returns an immediately-closed channel, leaving
// the active session and its subscriptions untouched.
//
// On a server built WithDispatcher, the session joins the fleet batcher
// before Run returns: its windows merge with other cameras' windows into
// shared ProcessBatch calls (ordered by session join order), and the
// session leaves the fleet when the loop exits. Results are still
// delivered in this stream's frame order.
func (st *Stream) Run(ctx context.Context, in <-chan *Frame) <-chan StreamResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make(chan StreamResult, st.buffer)
	st.subMu.Lock()
	if st.runActive {
		st.subMu.Unlock()
		close(out)
		return out
	}
	st.runActive = true
	st.subMu.Unlock()
	p, err := st.srv.pipe()
	if err != nil {
		close(out)
		st.finishSubs(ctx, false)
		return out
	}
	// Join the fleet before returning, so callers that start N Runs in
	// order get deterministic session join order (the dispatcher's merge
	// order) regardless of goroutine scheduling.
	var sess *dispatch.Session
	submitCtx := ctx
	var stopWatch context.CancelFunc
	if bat := st.srv.dispatcher(); bat != nil {
		sess = bat.Join()
		// Submit must also wake on Stream.Close; fold st.done into the
		// context it honours.
		c, cancel := context.WithCancel(ctx)
		submitCtx, stopWatch = c, cancel
		go func() {
			select {
			case <-st.done:
				cancel()
			case <-c.Done():
			}
		}()
	}
	go func() {
		clean := false
		// LIFO: out closes first, then subscriptions flush — so a consumer
		// draining out before the subscription channel cannot deadlock the
		// final window flush.
		defer func() { st.finishSubs(ctx, clean) }()
		defer close(out)
		if sess != nil {
			defer stopWatch()
			defer sess.Leave()
		}
		seq := 0
		batch := make([]*Frame, 0, st.maxBatch)
		for {
			// Block for the window's first frame, then greedily take
			// whatever has already arrived, up to MaxBatch.
			batch = batch[:0]
			select {
			case <-ctx.Done():
				return
			case <-st.done:
				return
			case f, ok := <-in:
				if !ok {
					clean = true
					return
				}
				batch = append(batch, f)
			}
		fill:
			for len(batch) < st.maxBatch {
				select {
				case f, ok := <-in:
					if !ok {
						break fill // flush, then exit on the next receive
					}
					batch = append(batch, f)
				default:
					break fill
				}
			}

			var results []Result
			if sess != nil {
				rs, err := sess.Submit(submitCtx, batch)
				if err != nil {
					return // run context cancelled or stream closed
				}
				results = rs
			} else {
				results = p.ProcessBatch(batch, st.workers)
			}
			// Standing queries observe the window before the per-frame
			// results go out, reusing the same sharded detections.
			if !st.deliverSubs(ctx, batch, results, seq) {
				return
			}
			for i, r := range results {
				select {
				case <-ctx.Done():
					return
				case <-st.done:
					return
				case out <- StreamResult{Seq: seq, Frame: batch[i], Result: r}:
					seq++
				}
			}
		}
	}()
	return out
}

// Close ends the session. In-flight work finishes; subsequent Process
// calls return ErrStreamClosed and Run loops exit — including loops
// blocked waiting for input, which Close wakes. Subscriptions end: an
// active Run session closes them on its way out, otherwise Close closes
// them here. Closing a stream does not affect the shared server. Close is
// idempotent.
func (st *Stream) Close() error {
	st.closeOnce.Do(func() { close(st.done) })
	st.subMu.Lock()
	defer st.subMu.Unlock()
	if !st.runActive {
		for len(st.subs) > 0 {
			st.dropSubLocked(st.subs[0])
		}
	}
	return nil
}
