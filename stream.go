package odin

import (
	"context"
	"sync"
)

// StreamOptions configures one camera-stream session.
type StreamOptions struct {
	// Name labels the stream (diagnostics only).
	Name string
	// Workers bounds the sharded fan-out of the per-frame
	// project→select→detect stages. 0 uses the server default
	// (WithWorkers, which itself defaults to GOMAXPROCS).
	Workers int
	// MaxBatch caps how many already-arrived frames one Run dispatch
	// aggregates. Larger windows amortise better (batched detection) at
	// the cost of per-frame latency. 0 picks 4×Workers (at least 8).
	MaxBatch int
	// Buffer is the capacity of the channel Run returns. 0 picks MaxBatch.
	Buffer int
}

// StreamResult is one frame's outcome on a Run channel. Results are
// delivered in frame order regardless of how the stages were sharded.
type StreamResult struct {
	// Seq is the 0-based position of the frame within this Run.
	Seq int
	// Frame is the input frame (with its ground truth, if any).
	Frame *Frame
	Result
}

// Stream is one camera session against a shared Server. A stream is not
// itself safe for concurrent Process calls (frames of one camera are
// ordered); open one Stream per camera instead — streams of the same
// Server process frames concurrently and share every model.
type Stream struct {
	srv      *Server
	name     string
	workers  int
	maxBatch int
	buffer   int

	closeOnce sync.Once
	done      chan struct{} // closed by Close; wakes blocked Run loops
}

// closedNow reports whether Close has been called.
func (st *Stream) closedNow() bool {
	select {
	case <-st.done:
		return true
	default:
		return false
	}
}

// Name returns the stream's label.
func (st *Stream) Name() string { return st.name }

// Process runs one frame through the drift-aware pipeline synchronously
// and returns its result. It honours ctx before starting (not mid-frame).
func (st *Stream) Process(ctx context.Context, f *Frame) (Result, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	if st.closedNow() {
		return Result{}, ErrStreamClosed
	}
	p, err := st.srv.pipe()
	if err != nil {
		return Result{}, err
	}
	return p.Process(f), nil
}

// Run consumes frames from in until it closes (or ctx is cancelled, or
// the stream is closed) and returns a channel of results in frame order.
// Arrived frames are aggregated into windows of at most MaxBatch and
// processed with the project and detect stages sharded across the
// stream's worker budget; results are bit-identical to sequential Process
// calls on the same frames. Cancellation closes the result channel
// without draining in.
//
// Run pins the server's pipeline for its whole lifetime: every frame it
// consumes from in is processed, even if the server is closed mid-run
// (Close's "in-flight work finishes" contract). If the server was already
// closed (or never bootstrapped) when Run is called, the returned channel
// is closed immediately; check Process or OpenStream for the typed error.
func (st *Stream) Run(ctx context.Context, in <-chan *Frame) <-chan StreamResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make(chan StreamResult, st.buffer)
	p, err := st.srv.pipe()
	if err != nil {
		close(out)
		return out
	}
	go func() {
		defer close(out)
		seq := 0
		batch := make([]*Frame, 0, st.maxBatch)
		for {
			// Block for the window's first frame, then greedily take
			// whatever has already arrived, up to MaxBatch.
			batch = batch[:0]
			select {
			case <-ctx.Done():
				return
			case <-st.done:
				return
			case f, ok := <-in:
				if !ok {
					return
				}
				batch = append(batch, f)
			}
		fill:
			for len(batch) < st.maxBatch {
				select {
				case f, ok := <-in:
					if !ok {
						break fill // flush, then exit on the next receive
					}
					batch = append(batch, f)
				default:
					break fill
				}
			}

			for i, r := range p.ProcessBatch(batch, st.workers) {
				select {
				case <-ctx.Done():
					return
				case <-st.done:
					return
				case out <- StreamResult{Seq: seq, Frame: batch[i], Result: r}:
					seq++
				}
			}
		}
	}()
	return out
}

// Close ends the session. In-flight work finishes; subsequent Process
// calls return ErrStreamClosed and Run loops exit — including loops
// blocked waiting for input, which Close wakes. Closing a stream does not
// affect the shared server. Close is idempotent.
func (st *Stream) Close() error {
	st.closeOnce.Do(func() { close(st.done) })
	return nil
}
