package odin

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"odin/internal/core"
	"odin/internal/dispatch"
	"odin/internal/obs"
	"odin/internal/qos"
	"odin/internal/query"
)

// StreamOptions configures one camera-stream session.
type StreamOptions struct {
	// Name labels the stream (diagnostics only).
	Name string
	// Workers bounds the sharded fan-out of the per-frame
	// project→select→detect stages. 0 uses the server default
	// (WithWorkers, which itself defaults to GOMAXPROCS). On a server
	// built WithDispatcher, Run windows are merged across streams and
	// processed at the server-wide worker budget, so Workers then applies
	// only to synchronous Process calls; results are identical at every
	// worker count either way.
	Workers int
	// MaxBatch caps how many already-arrived frames one Run dispatch
	// aggregates. Larger windows amortise better (batched detection) at
	// the cost of per-frame latency. 0 picks 4×Workers (at least 8).
	MaxBatch int
	// Buffer is the capacity of the channel Run returns. 0 picks MaxBatch.
	Buffer int
	// Weight is the stream's share of the fleet dispatcher's flush budget
	// (WithDispatcher): a weight-w session's frames are charged at 1/w
	// against the merged-batch budget, so it flushes proportionally more
	// per round under contention. 0 or 1 is an equal share. Ignored
	// without a dispatcher.
	Weight int
}

// StreamResult is one frame's outcome on a Run channel. Results are
// delivered in frame order regardless of how the stages were sharded.
type StreamResult struct {
	// Seq is the 0-based position of the frame within this Run. With
	// admission control (WithMaxQueue) dropped frames consume sequence
	// numbers too, so Seq stays contiguous across the session.
	Seq int
	// Frame is the input frame (with its ground truth, if any). Nil when
	// Dropped is set — the queue shed the frame before processing.
	Frame *Frame
	// Dropped marks a frame shed by the admission queue's drop policy.
	// The marker keeps the ledger exact — every admitted frame yields a
	// result, every shed frame yields a marker, nothing vanishes — but
	// carries no Frame and a zero Result.
	Dropped bool
	Result
}

// WindowOptions configures a continuous-query subscription
// (Stream.Subscribe).
type WindowOptions struct {
	// Size is the number of frames aggregated per emitted window. 0 uses
	// the stream's MaxBatch. Window boundaries are frame-sequence based,
	// so they are deterministic regardless of how Run batched the frames.
	Size int
	// Buffer is the capacity of the subscription's result channel
	// (0 picks 4). A full channel applies backpressure to the stream's
	// Run loop, so consume window results concurrently with the Run
	// results (or size Buffer for the expected window count).
	Buffer int
}

// WindowResult is one window's aggregate on a subscription channel.
// Windows are emitted in frame order; the embedded QueryResult carries the
// count, per-frame counts and data-reduction stats for the window's
// frames.
type WindowResult struct {
	// Window is the 0-based window index within this subscription.
	Window int
	// StartSeq and EndSeq are the inclusive Run sequence range the window
	// covers. The final window of a session may be partial.
	StartSeq, EndSeq int
	// Err is non-nil when evaluating the window failed (the subscription
	// context was cancelled mid-window, or a custom batch model
	// misbehaved). An errored window carries no aggregate and is the
	// subscription's final emission: the channel closes after it.
	Err error
	// GenLo and GenHi are the lowest and highest model-set generation that
	// served the window's frames — a window spanning a model swap reports
	// GenLo < GenHi, so per-window accuracy shifts can be attributed to
	// the swap.
	GenLo, GenHi uint64
	// RecoveryPending counts the window's frames served while a drift
	// recovery was still training (async mode; always 0 inline) — the
	// per-window visibility of the interim previous-best policy.
	RecoveryPending int
	// Degraded counts the window's frames served below full fidelity by
	// the adaptive controller (WithAdaptiveFidelity; always 0 otherwise).
	// Frames shed by the admission queue never reach subscriptions, so a
	// window under overload may also span a wider sequence range than its
	// frame count suggests.
	Degraded int
	QueryResult
}

// subscription is one standing query attached to a stream: a prepared
// plan plus the current window's accumulation state. All mutable state is
// touched only by the Run loop (and by the final flush), never
// concurrently.
type subscription struct {
	ctx    context.Context
	plan   *query.Plan
	shared bool // plan's model is the drift pipeline: reuse Run's results
	size   int
	ch     chan WindowResult

	win    int
	start  int
	last   int
	frames []*Frame
	dets   [][]Detection
	genLo  uint64
	genHi  uint64
	pendN  int
	degr   int
	closed bool
}

// window evaluates and resets the current accumulation. For shared plans
// it reduces the pipeline detections the Run loop already produced; for
// other plans it executes the model over the window's frames. A failed
// evaluation (cancelled subscription context, misbehaving custom batch
// model) is reported as a WindowResult carrying Err, so the consumer can
// distinguish it from a normal end of session.
func (sub *subscription) window() WindowResult {
	wr := WindowResult{
		Window: sub.win, StartSeq: sub.start, EndSeq: sub.last,
		GenLo: sub.genLo, GenHi: sub.genHi, RecoveryPending: sub.pendN,
		Degraded: sub.degr,
	}
	if sub.shared {
		wr.QueryResult = *sub.plan.ExecuteOver(sub.frames, sub.dets)
	} else if res, err := sub.plan.Execute(sub.ctx, sub.frames); err != nil {
		wr.Err = err
	} else {
		wr.QueryResult = *res
	}
	sub.win++
	sub.frames = sub.frames[:0]
	sub.dets = sub.dets[:0]
	return wr
}

// Stream is one camera session against a shared Server. A stream is not
// itself safe for concurrent Process calls (frames of one camera are
// ordered); open one Stream per camera instead — streams of the same
// Server process frames concurrently and share every model.
type Stream struct {
	srv      *Server
	name     string
	workers  int
	maxBatch int
	buffer   int
	weight   int

	// QoS configuration copied from the server at OpenStream.
	maxQueue int // 0: legacy unbounded intake
	dropPol  qos.DropPolicy
	adaptive *AdaptiveFidelity

	closeOnce sync.Once
	done      chan struct{} // closed by Close; wakes blocked Run loops

	subMu     sync.Mutex
	subs      []*subscription
	runActive bool // a Run session owns the subscriptions' lifecycle

	// QoS session state. queue and ctrl belong to the active (or most
	// recent) Run session; qosActive gates Offer admissions. ctrl is not
	// itself concurrency-safe, so every access goes through qosMu.
	qosMu     sync.Mutex
	queue     *qos.Queue
	ctrl      *qos.Controller
	qosActive bool
}

// closedNow reports whether Close has been called.
func (st *Stream) closedNow() bool {
	select {
	case <-st.done:
		return true
	default:
		return false
	}
}

// Name returns the stream's label.
func (st *Stream) Name() string { return st.name }

// Process runs one frame through the drift-aware pipeline synchronously
// and returns its result. It honours ctx before starting (not mid-frame).
func (st *Stream) Process(ctx context.Context, f *Frame) (Result, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	if st.closedNow() {
		return Result{}, ErrStreamClosed
	}
	p, err := st.srv.pipe()
	if err != nil {
		return Result{}, err
	}
	return p.Process(f), nil
}

// Subscribe attaches a standing continuous query to the stream: every
// frame a Run session processes is offered to the subscription, and each
// completed window of o.Size frames emits one WindowResult aggregate on
// the returned channel, in frame order. Plans whose model is the
// drift-aware pipeline ("odin") reduce the session's own sharded
// ProcessBatch results — detection runs once per window no matter how many
// subscriptions share the stream, and their filters act as counting
// filters (the pipeline must observe every frame for drift detection).
// Plans bound to other models execute their model over each window's
// frames, with filters skipping model work exactly as in offline queries.
//
// The subscription lives until its context is cancelled, the stream is
// closed, or the Run session ends — a session's end flushes a final
// (possibly partial) window and closes the channel. Subscribing before
// Run starts is allowed; frames only flow while a Run session is active
// (synchronous Process calls do not feed subscriptions).
func (st *Stream) Subscribe(ctx context.Context, pq *PreparedQuery, o WindowOptions) (<-chan WindowResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if pq == nil {
		return nil, errors.New("odin: nil prepared query")
	}
	if pq.srv != st.srv {
		return nil, ErrForeignQuery
	}
	if err := st.srv.alive(); err != nil {
		return nil, err
	}
	size := o.Size
	if size <= 0 {
		size = st.maxBatch
	}
	buffer := o.Buffer
	if buffer <= 0 {
		buffer = 4
	}
	sub := &subscription{
		ctx:    ctx,
		plan:   pq.plan,
		shared: pq.pipelineShared,
		size:   size,
		ch:     make(chan WindowResult, buffer),
	}
	st.subMu.Lock()
	defer st.subMu.Unlock()
	if st.closedNow() {
		return nil, ErrStreamClosed
	}
	st.subs = append(st.subs, sub)
	return sub.ch, nil
}

// snapshotSubs copies the active subscription list.
func (st *Stream) snapshotSubs() []*subscription {
	st.subMu.Lock()
	defer st.subMu.Unlock()
	out := make([]*subscription, len(st.subs))
	copy(out, st.subs)
	return out
}

// dropSub closes a subscription's channel and removes it. Idempotent.
func (st *Stream) dropSub(sub *subscription) {
	st.subMu.Lock()
	defer st.subMu.Unlock()
	st.dropSubLocked(sub)
}

func (st *Stream) dropSubLocked(sub *subscription) {
	if sub.closed {
		return
	}
	sub.closed = true
	close(sub.ch)
	for i, s := range st.subs {
		if s == sub {
			st.subs = append(st.subs[:i], st.subs[i+1:]...)
			break
		}
	}
}

// deliverSubs offers one processed window of the Run session to every
// subscription, emitting completed aggregation windows along the way.
// seqs[i] is batch[i]'s Run sequence number — contiguous on the legacy
// path, possibly gapped under admission control (dropped frames consume
// sequence numbers but never reach subscriptions). Returns false when the
// session must abort (run context cancelled or stream closed while blocked
// on a subscriber).
func (st *Stream) deliverSubs(ctx context.Context, batch []*Frame, results []Result, seqs []int) bool {
	subs := st.snapshotSubs()
	if len(subs) == 0 {
		return true
	}
	for _, sub := range subs {
		if sub.ctx.Err() != nil {
			st.dropSub(sub)
			continue
		}
	frames:
		for i, f := range batch {
			if len(sub.frames) == 0 {
				sub.start = seqs[i]
				sub.genLo, sub.genHi = results[i].ModelGen, results[i].ModelGen
				sub.pendN = 0
				sub.degr = 0
			}
			sub.frames = append(sub.frames, f)
			sub.last = seqs[i]
			if g := results[i].ModelGen; g < sub.genLo {
				sub.genLo = g
			} else if g > sub.genHi {
				sub.genHi = g
			}
			if results[i].RecoveryPending {
				sub.pendN++
			}
			if results[i].Fidelity.Degraded() {
				sub.degr++
			}
			if sub.shared {
				sub.dets = append(sub.dets, results[i].Detections)
			}
			if len(sub.frames) < sub.size {
				continue
			}
			wr := sub.window()
			select {
			case sub.ch <- wr:
				if wr.Err != nil { // errored windows end the subscription
					st.dropSub(sub)
					break frames
				}
			case <-sub.ctx.Done():
				st.dropSub(sub)
				break frames
			case <-st.done:
				return false
			case <-ctx.Done():
				return false
			}
		}
	}
	return true
}

// finishSubs ends the Run session's subscriptions. A clean end (input
// exhausted) flushes each subscription's partial window before closing its
// channel; a cancelled session closes them without the flush (cancellation
// does not promise the partial window). The flush honours the Run context
// too, so an abandoned subscription channel cannot pin the session's
// goroutine past a cancellation.
func (st *Stream) finishSubs(ctx context.Context, clean bool) {
	// Loop until the list is observed empty under the lock that also
	// clears runActive: a Subscribe racing this teardown lands either in a
	// snapshot (and is closed here) or after runActive is cleared (and
	// belongs to the next session) — never orphaned.
	for {
		st.subMu.Lock()
		if len(st.subs) == 0 {
			st.runActive = false
			st.subMu.Unlock()
			return
		}
		subs := make([]*subscription, len(st.subs))
		copy(subs, st.subs)
		st.subMu.Unlock()
		for _, sub := range subs {
			if clean && len(sub.frames) > 0 && sub.ctx.Err() == nil {
				select {
				case sub.ch <- sub.window():
				case <-sub.ctx.Done():
				case <-st.done:
				case <-ctx.Done():
				}
			}
			st.dropSub(sub)
		}
	}
}

// Run consumes frames from in until it closes (or ctx is cancelled, or
// the stream is closed) and returns a channel of results in frame order.
// Arrived frames are aggregated into windows of at most MaxBatch and
// processed with the project and detect stages sharded across the
// stream's worker budget; results are bit-identical to sequential Process
// calls on the same frames. Cancellation closes the result channel
// without draining in.
//
// Run pins the server's pipeline for its whole lifetime: every frame it
// consumes from in is processed, even if the server is closed mid-run
// (Close's "in-flight work finishes" contract). If the server was already
// closed (or never bootstrapped) when Run is called, the returned channel
// is closed immediately — and so are the stream's subscription channels
// (no session will feed them); check Process or OpenStream for the typed
// error. A stream carries at most one Run session at a time: a second Run
// while one is active also returns an immediately-closed channel, leaving
// the active session and its subscriptions untouched.
//
// On a server built WithDispatcher, the session joins the fleet batcher
// before Run returns: its windows merge with other cameras' windows into
// shared ProcessBatch calls (ordered by session join order), and the
// session leaves the fleet when the loop exits. Results are still
// delivered in this stream's frame order.
//
// On a server built WithMaxQueue (or WithAdaptiveFidelity), the session
// runs under admission control instead of the unbounded intake: an intake
// goroutine admits frames from in into a bounded queue under the
// configured drop policy, Stream.Offer admits into the same queue without
// blocking, and frames the queue sheds yield StreamResults with Dropped
// set, in sequence order. With adaptive fidelity the session additionally
// degrades to cheaper plans under sustained overload (see
// WithAdaptiveFidelity); every result carries the fidelity that served
// it. At or under capacity nothing is dropped or degraded and results are
// bit-identical to a server without QoS.
func (st *Stream) Run(ctx context.Context, in <-chan *Frame) <-chan StreamResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make(chan StreamResult, st.buffer)
	st.subMu.Lock()
	if st.runActive {
		st.subMu.Unlock()
		close(out)
		return out
	}
	st.runActive = true
	st.subMu.Unlock()
	p, err := st.srv.pipe()
	if err != nil {
		close(out)
		st.finishSubs(ctx, false)
		return out
	}
	// Join the fleet before returning, so callers that start N Runs in
	// order get deterministic session join order (the dispatcher's merge
	// order) regardless of goroutine scheduling.
	var sess *dispatch.Session
	submitCtx := ctx
	var stopWatch context.CancelFunc
	if bat := st.srv.dispatcher(); bat != nil {
		sess = bat.JoinWeighted(st.weight)
		// Submit must also wake on Stream.Close; fold st.done into the
		// context it honours.
		c, cancel := context.WithCancel(ctx)
		submitCtx, stopWatch = c, cancel
		go func() {
			select {
			case <-st.done:
				cancel()
			case <-c.Done():
			}
		}()
	}
	if st.maxQueue > 0 {
		st.runQoS(ctx, in, out, p, sess, submitCtx, stopWatch)
		return out
	}
	go func() {
		clean := false
		// LIFO: out closes first, then subscriptions flush — so a consumer
		// draining out before the subscription channel cannot deadlock the
		// final window flush.
		defer func() { st.finishSubs(ctx, clean) }()
		defer close(out)
		if sess != nil {
			defer stopWatch()
			defer sess.Leave()
		}
		ob := st.srv.obs
		seq := 0
		batch := make([]*Frame, 0, st.maxBatch)
		seqs := make([]int, 0, st.maxBatch)
		for {
			// Block for the window's first frame, then greedily take
			// whatever has already arrived, up to MaxBatch.
			batch = batch[:0]
			select {
			case <-ctx.Done():
				return
			case <-st.done:
				return
			case f, ok := <-in:
				if !ok {
					clean = true
					return
				}
				batch = append(batch, f)
			}
			tA := ob.Now()
		fill:
			for len(batch) < st.maxBatch {
				select {
				case f, ok := <-in:
					if !ok {
						break fill // flush, then exit on the next receive
					}
					batch = append(batch, f)
				default:
					break fill
				}
			}
			ob.Stage(obs.StageAssembly, tA, len(batch))

			var results []Result
			if sess != nil {
				rs, err := sess.Submit(submitCtx, batch)
				if err != nil {
					return // run context cancelled or stream closed
				}
				results = rs
			} else {
				results = p.ProcessBatch(batch, st.workers)
			}
			// Standing queries observe the window before the per-frame
			// results go out, reusing the same sharded detections.
			seqs = seqs[:0]
			for i := range batch {
				seqs = append(seqs, seq+i)
			}
			if !st.deliverSubs(ctx, batch, results, seqs) {
				return
			}
			tE := ob.Now()
			for i, r := range results {
				select {
				case <-ctx.Done():
					return
				case <-st.done:
					return
				case out <- StreamResult{Seq: seq, Frame: batch[i], Result: r}:
					seq++
				}
			}
			ob.Stage(obs.StageEmit, tE, len(results))
		}
	}()
	return out
}

// runQoS is the admission-controlled Run session (WithMaxQueue): an
// intake goroutine drains in into the bounded queue, and the main loop
// pops admitted batches, applies the fidelity controller (live hysteresis
// or replay script), processes, and emits results — real and drop markers
// interleaved — in admission order.
func (st *Stream) runQoS(ctx context.Context, in <-chan *Frame, out chan StreamResult, p *core.Odin, sess *dispatch.Session, submitCtx context.Context, stopWatch context.CancelFunc) {
	queue := qos.NewQueue(st.maxQueue, st.dropPol)
	ob := st.srv.obs
	if ob != nil {
		// Arrival stamps feed the queue-wait stage metric; the
		// uninstrumented path never reads the clock.
		queue.StampArrivals(true)
	}
	var ctrl *qos.Controller
	var script []int
	subsample := 0
	if af := st.adaptive; af != nil {
		subsample = af.SubsampleEvery
		if subsample == 0 {
			subsample = 4
		}
		if af.Script != nil {
			script = af.Script
		} else {
			ctrl = qos.NewController(qos.ControllerConfig{
				HighWater: af.HighWater, LowWater: af.LowWater,
				Patience: af.Patience, MaxLevel: af.MaxLevel,
			})
		}
	}
	st.qosMu.Lock()
	st.queue, st.ctrl = queue, ctrl
	st.qosActive = true
	st.qosMu.Unlock()

	// Intake: admit frames from in under the drop policy. A blocked push
	// (DropBlock backpressure) wakes on cancellation or stream close;
	// when in closes, the queue closes, which the main loop observes as a
	// clean end of input once the backlog drains.
	go func() {
		defer queue.Close()
		for {
			select {
			case <-ctx.Done():
				return
			case <-st.done:
				return
			case f, ok := <-in:
				if !ok {
					return
				}
				// The admission sample includes any DropBlock backpressure
				// wait — time a frame spends fighting for a queue slot.
				t0 := ob.Now()
				if queue.Push(ctx, st.done, f) != nil {
					return
				}
				ob.Stage(obs.StageAdmission, t0, 1)
			}
		}
	}()

	go func() {
		clean := false
		// LIFO: out closes first, then subscriptions flush (see Run).
		defer func() { st.finishSubs(ctx, clean) }()
		defer close(out)
		defer func() {
			st.qosMu.Lock()
			st.qosActive = false
			st.qosMu.Unlock()
		}()
		if sess != nil {
			defer stopWatch()
			defer sess.Leave()
		}
		frames := make([]*Frame, 0, st.maxBatch)
		fids := make([]qos.Fidelity, 0, st.maxBatch)
		seqs := make([]int, 0, st.maxBatch)
		prevLevel := 0
		for {
			entries, err := queue.Pop(ctx, st.done, st.maxBatch)
			if err != nil {
				// ErrClosed with a live context and an open stream means
				// the input closed and the backlog drained: a clean end
				// that flushes partial subscription windows.
				clean = err == qos.ErrClosed && ctx.Err() == nil && !st.closedNow()
				return
			}
			// Degradation level for this batch: scripted sessions derive
			// it per frame from the sequence number alone (bit-for-bit
			// replayable at any worker count), live sessions observe the
			// backlog the pop found — the depth left behind plus the
			// batch just taken. (Depth after the pop alone is too noisy:
			// with queue ≈ 4×MaxBatch it oscillates across the mid-band,
			// which resets the patience counter and the controller never
			// engages even when the queue is pinned full.)
			level := 0
			if ctrl != nil {
				popped := 0
				for _, e := range entries {
					if e.DropN == 0 {
						popped++
					}
				}
				d, c := queue.Depth()
				st.qosMu.Lock()
				level = ctrl.Observe(float64(d+popped) / float64(c))
				st.qosMu.Unlock()
				if ob != nil && level != prevLevel {
					kind := obs.EvFidelityDegrade
					if level < prevLevel {
						kind = obs.EvFidelityRestore
					}
					ob.Event(kind, st.name, -1, -1,
						fmt.Sprintf("level %d -> %d", prevLevel, level))
				}
				prevLevel = level
			}
			if ob != nil {
				for _, e := range entries {
					if !e.At.IsZero() {
						ob.StageDur(obs.StageQueueWait, time.Since(e.At), 1)
					}
				}
			}
			frames, fids, seqs = frames[:0], fids[:0], seqs[:0]
			degraded := false
			for _, e := range entries {
				if e.DropN > 0 {
					continue
				}
				lv := level
				if script != nil {
					w := e.Seq / st.maxBatch
					if w >= len(script) {
						w = len(script) - 1
					}
					lv = script[w]
				}
				fid := qos.ForLevel(lv, e.Seq, subsample)
				if fid.Degraded() {
					degraded = true
				}
				frames = append(frames, e.Frame)
				fids = append(fids, fid)
				seqs = append(seqs, e.Seq)
			}

			var results []Result
			if len(frames) > 0 {
				batchFids := fids
				if !degraded {
					batchFids = nil // all-full fidelity IS the legacy path
				}
				if sess != nil {
					rs, err := sess.SubmitFid(submitCtx, frames, batchFids)
					if err != nil {
						return // run context cancelled or stream closed
					}
					results = rs
				} else {
					results = p.ProcessBatchFid(frames, st.workers, batchFids)
				}
				if !st.deliverSubs(ctx, frames, results, seqs) {
					return
				}
			}

			// Emit in admission order: real results interleaved with one
			// Dropped marker per shed frame, so every frame the session
			// ever admitted or shed is accounted for on the out channel.
			ri := 0
			tE := ob.Now()
			emitted := 0
			for _, e := range entries {
				if e.DropN > 0 {
					p.AddDropped(e.DropN)
					ob.DroppedFrames(e.DropN)
					for k := 0; k < e.DropN; k++ {
						select {
						case <-ctx.Done():
							return
						case <-st.done:
							return
						case out <- StreamResult{Seq: e.Seq + k, Dropped: true}:
							emitted++
						}
					}
					continue
				}
				select {
				case <-ctx.Done():
					return
				case <-st.done:
					return
				case out <- StreamResult{Seq: e.Seq, Frame: e.Frame, Result: results[ri]}:
					emitted++
				}
				ri++
			}
			ob.Stage(obs.StageEmit, tE, emitted)
		}
	}()
}

// Offer submits one frame to the stream's active Run session without
// blocking — the explicit admission-control entry point. An admitted
// frame takes the next sequence number and yields a result on the Run
// channel in admission order, exactly as if it had arrived on the input
// channel; when the queue is full the frame is rejected with
// ErrOverloaded (counted in QoS().Rejected) and stays with the caller.
// Requires a server built WithMaxQueue (or WithAdaptiveFidelity) and an
// active Run session — ErrNoAdmission otherwise.
func (st *Stream) Offer(f *Frame) error {
	if st.closedNow() {
		return ErrStreamClosed
	}
	st.qosMu.Lock()
	q, active := st.queue, st.qosActive
	st.qosMu.Unlock()
	if q == nil || !active {
		return ErrNoAdmission
	}
	if !q.TryPush(f) {
		st.srv.obs.RejectedFrames(1)
		return ErrOverloaded
	}
	return nil
}

// StreamQoS is a snapshot of a stream's QoS state (Stream.QoS).
type StreamQoS struct {
	// Enabled reports whether the server runs admission control
	// (WithMaxQueue or WithAdaptiveFidelity).
	Enabled bool
	// Level is the adaptive controller's current degradation level (0 =
	// full fidelity). Always 0 for scripted or non-adaptive sessions.
	Level int
	// Transitions counts the adaptive controller's level changes, up and
	// down.
	Transitions int
	// Dropped counts frames the admission queue's drop policy shed (each
	// also yielded a Dropped StreamResult).
	Dropped uint64
	// Rejected counts Offer calls refused with ErrOverloaded.
	Rejected uint64
	// QueueFrames and QueueCap are the admission queue's current backlog
	// and its bound.
	QueueFrames int
	QueueCap    int
	// Decisions is the controller's level trace, one entry per drained
	// batch, in order — the raw record of how the session walked the
	// ladder.
	Decisions []int
}

// QoS returns a snapshot of the stream's QoS state. Queue and controller
// state belong to a Run session: before the first Run everything except
// Enabled is zero, and after a session ends its final counters remain
// readable.
func (st *Stream) QoS() StreamQoS {
	s := StreamQoS{Enabled: st.maxQueue > 0}
	st.qosMu.Lock()
	defer st.qosMu.Unlock()
	if st.queue != nil {
		s.Dropped = st.queue.Dropped()
		s.Rejected = st.queue.Rejected()
		s.QueueFrames, s.QueueCap = st.queue.Depth()
	}
	if st.ctrl != nil {
		s.Level = st.ctrl.Level()
		s.Transitions = st.ctrl.Transitions()
		s.Decisions = st.ctrl.Decisions()
	}
	return s
}

// Close ends the session. In-flight work finishes; subsequent Process
// calls return ErrStreamClosed and Run loops exit — including loops
// blocked waiting for input, which Close wakes. Subscriptions end: an
// active Run session closes them on its way out, otherwise Close closes
// them here. Closing a stream does not affect the shared server. Close is
// idempotent.
func (st *Stream) Close() error {
	st.closeOnce.Do(func() { close(st.done) })
	st.subMu.Lock()
	defer st.subMu.Unlock()
	if !st.runActive {
		for len(st.subs) > 0 {
			st.dropSubLocked(st.subs[0])
		}
	}
	return nil
}
