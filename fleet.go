package odin

import (
	"odin/internal/dispatch"
	"odin/internal/registry"
)

// ModelRegistry is a fleet-level store of recovered drift models, shared by
// servers via WithFleetRecovery: when one camera's server recovers from a
// drift regime (dawn breaking, snow starting), the model is published here,
// and other servers entering the same regime adopt it, warm-start from it,
// or coalesce onto the in-flight build instead of training from scratch —
// the ECCO-style correlated-recovery path (DESIGN.md §9). Create one with
// NewModelRegistry and pass it to every server in the fleet.
//
// Signatures are only comparable between servers that share a bootstrap
// substrate — same seed and same bootstrap frames — because the regime
// signature lives in the DA-GAN latent space. Servers bootstrapped on
// different substrates never match each other's entries (the distance is
// effectively infinite), so sharing a registry across them is safe but
// useless.
type ModelRegistry struct {
	reg *registry.Registry
}

// NewModelRegistry creates a fleet model registry bounded to capacity
// resident models, evicting least-recently-used entries past it. capacity
// ≤ 0 selects the default (32).
func NewModelRegistry(capacity int) *ModelRegistry {
	return &ModelRegistry{reg: registry.New(capacity)}
}

// Stats returns a snapshot of the registry telemetry.
func (r *ModelRegistry) Stats() RegistryStats {
	return r.reg.Stats()
}

// RegistryStats is fleet model-registry telemetry: resident size against
// capacity, and per-resolution counters (every lookup is exactly one of an
// adopt hit, a coalesce, a warm hit or a miss).
type RegistryStats = registry.Stats

// TrainerStats is async-trainer telemetry: jobs trained/failed/dropped,
// with the trained count broken down by recovery path (scratch, warm-start,
// adopted, coalesced).
type TrainerStats = dispatch.TrainerStats

// TrainerStats returns the async trainer's telemetry. Zero before
// Bootstrap or without WithTrainAsync / WithFleetRecovery.
func (s *Server) TrainerStats() TrainerStats {
	s.mu.Lock()
	tr := s.trainer
	s.mu.Unlock()
	if tr == nil {
		return TrainerStats{}
	}
	return tr.Stats()
}

// RegistryStats returns the fleet model registry's telemetry. Zero before
// Bootstrap or without WithFleetRecovery. With a shared registry the
// counters aggregate the whole fleet, not just this server.
func (s *Server) RegistryStats() RegistryStats {
	s.mu.Lock()
	reg := s.registry
	s.mu.Unlock()
	if reg == nil {
		return RegistryStats{}
	}
	return reg.Stats()
}

// DispatchStats is fleet-batcher telemetry: merged batches, windows and
// frames processed, the best merge factor achieved, plus the weighted
// flush counters — how many flushes were cut by the frame budget and the
// windows/frames currently queued behind one.
type DispatchStats = dispatch.Stats

// DispatchStats returns the fleet batcher's telemetry. Zero before
// Bootstrap or without WithDispatcher.
func (s *Server) DispatchStats() DispatchStats {
	s.mu.Lock()
	bat := s.batcher
	s.mu.Unlock()
	if bat == nil {
		return DispatchStats{}
	}
	return bat.Stats()
}
