package odin

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§6). Each benchmark runs the corresponding experiment at
// Quick scale and reports the headline numbers the paper reports as custom
// benchmark metrics (e.g. mAP×1000, F1×100, FPS, MB), so
// `go test -bench=. -benchmem` regenerates every result series.
//
// Experiments share one lazily initialised context, so models trained for
// an early benchmark are reused by later ones. Full-scale runs:
// `go run ./cmd/odin-bench -scale full`.

import (
	"io"
	"sync"
	"testing"

	"odin/internal/exp"
)

var (
	benchCtx  *exp.Context
	benchOnce sync.Once
)

func ctxForBench() *exp.Context {
	benchOnce.Do(func() {
		benchCtx = exp.NewContext(exp.Quick)
	})
	return benchCtx
}

func BenchmarkFigure1MotivatingExample(b *testing.B) {
	c := ctxForBench()
	for i := 0; i < b.N; i++ {
		r := exp.RunFig1(c, io.Discard)
		b.ReportMetric(r.StaticMAP*1000, "static-mAPx1000")
		b.ReportMetric(r.OdinMAP*1000, "odin-mAPx1000")
		b.ReportMetric(r.OdinFPS/r.StaticFPS, "speedup")
		b.ReportMetric(r.StaticMemMB/r.OdinMemMB, "mem-ratio")
	}
}

func BenchmarkFigure2LatentSpaces(b *testing.B) {
	c := ctxForBench()
	for i := 0; i < b.N; i++ {
		r := exp.RunFig2(c, io.Discard)
		b.ReportMetric(r.AECycle, "ae-cycle")
		b.ReportMetric(r.AAECycle, "aae-cycle")
		b.ReportMetric(r.DGCycle, "dagan-cycle")
		b.ReportMetric(r.DGRecon*1000, "dagan-reconx1000")
	}
}

func BenchmarkFigure4DeltaBand(b *testing.B) {
	c := ctxForBench()
	for i := 0; i < b.N; i++ {
		r := exp.RunFig4(c, io.Discard)
		b.ReportMetric(r.Band.Lo, "band-lo")
		b.ReportMetric(r.Band.Hi, "band-hi")
		b.ReportMetric(r.InBand*100, "mass-in-band-pct")
	}
}

func BenchmarkFigure5ProjectionFailure(b *testing.B) {
	c := ctxForBench()
	for i := 0; i < b.N; i++ {
		r := exp.RunFig5(c, io.Discard)
		b.ReportMetric(r.OutlierErr/r.InlierErr, "outlier-inlier-ratio")
	}
}

func BenchmarkTable1DriftDetection(b *testing.B) {
	c := ctxForBench()
	for i := 0; i < b.N; i++ {
		r := exp.RunTable1(c, io.Discard)
		last := len(r.Fractions) - 1
		b.ReportMetric(r.MNIST["DG"][last]*100, "mnist-dg-f1@50x100")
		b.ReportMetric(r.MNIST["LOF"][last]*100, "mnist-lof-f1@50x100")
		b.ReportMetric(r.CIFAR["DG"][last]*100, "cifar-dg-f1@50x100")
		b.ReportMetric(r.CIFAR["AE"][last]*100, "cifar-ae-f1@50x100")
	}
}

func BenchmarkTable2ClusterDiscovery(b *testing.B) {
	c := ctxForBench()
	for i := 0; i < b.N; i++ {
		r := exp.RunTable2(c, io.Discard)
		b.ReportMetric(float64(r.NumClusters), "clusters")
	}
}

func BenchmarkFigure8Specialization(b *testing.B) {
	c := ctxForBench()
	for i := 0; i < b.N; i++ {
		r := exp.RunFig8(c, io.Discard)
		// NIGHT-DATA is index 2: the paper's 2x specialization headline.
		b.ReportMetric(r.YOLO[2]*1000, "yolo-night-mAPx1000")
		b.ReportMetric(r.Specialized[2]*1000, "spec-night-mAPx1000")
		b.ReportMetric(r.Specialized[2]/maxf(r.YOLO[2], 1e-9), "night-gain")
	}
}

func BenchmarkTable3CrossSubset(b *testing.B) {
	c := ctxForBench()
	for i := 0; i < b.N; i++ {
		r := exp.RunTable3(c, io.Discard)
		// Day specialist on DAY-DATA (own) vs NIGHT-DATA (cross).
		b.ReportMetric(r.Cross[0][1]*1000, "day-spec-own-mAPx1000")
		b.ReportMetric(r.Cross[0][2]*1000, "day-spec-night-mAPx1000")
	}
}

func BenchmarkTable4CostModel(b *testing.B) {
	c := ctxForBench()
	for i := 0; i < b.N; i++ {
		r := exp.RunTable4(c, io.Discard)
		yolo := r.Costs[0]
		spec := r.Costs[1]
		b.ReportMetric(yolo.FPS, "yolo-fps")
		b.ReportMetric(spec.FPS, "spec-fps")
		b.ReportMetric(yolo.SizeMB, "yolo-mb")
		b.ReportMetric(spec.SizeMB, "spec-mb")
	}
}

func BenchmarkTable5SelectionPolicies(b *testing.B) {
	c := ctxForBench()
	for i := 0; i < b.N; i++ {
		r := exp.RunTable5(c, io.Discard)
		// DAY-DATA row (index 1).
		b.ReportMetric(r.Baseline[1]*1000, "baseline-day-mAPx1000")
		b.ReportMetric(r.KNNU[1]*1000, "knnu-day-mAPx1000")
		b.ReportMetric(r.KNNW[1]*1000, "knnw-day-mAPx1000")
		b.ReportMetric(r.DeltaBM[1]*1000, "deltabm-day-mAPx1000")
	}
}

func BenchmarkFigure9EndToEnd(b *testing.B) {
	c := ctxForBench()
	for i := 0; i < b.N; i++ {
		r := exp.RunFig9(c, io.Discard)
		lastW := len(r.Series[0]) - 1
		b.ReportMetric(r.Series[0][lastW]*1000, "baseline-final-mAPx1000")
		b.ReportMetric(r.Series[1][lastW]*1000, "deltabm-final-mAPx1000")
		b.ReportMetric(r.FPS[1], "odin-fps")
		b.ReportMetric(r.MemMB[1], "odin-mb")
	}
}

func BenchmarkTable6AggregationQueries(b *testing.B) {
	c := ctxForBench()
	for i := 0; i < b.N; i++ {
		r := exp.RunTable6(c, io.Discard)
		for _, row := range r.Rows {
			switch row.Name {
			case "Static":
				b.ReportMetric(row.CarAcc*100, "static-car-accx100")
			case "ODIN":
				b.ReportMetric(row.CarAcc*100, "odin-car-accx100")
				b.ReportMetric(row.FPS, "odin-query-fps")
			case "ODIN-FILTER":
				b.ReportMetric(row.TruckRed*100, "filter-truck-reduction-pct")
			}
		}
	}
}

func BenchmarkTable7Ablation(b *testing.B) {
	c := ctxForBench()
	for i := 0; i < b.N; i++ {
		r := exp.RunTable7(c, io.Discard)
		b.ReportMetric(r.MAP[0]*1000, "endtoend-mAPx1000")
		b.ReportMetric(r.MAP[1]*1000, "noselector-mAPx1000")
		b.ReportMetric(r.MAP[2]*1000, "baseline-mAPx1000")
		b.ReportMetric(r.FPS[0], "endtoend-fps")
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
